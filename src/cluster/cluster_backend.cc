#include "cluster/cluster_backend.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "obs/tracer.h"
#include "storage/container_format.h"
#include "storage/segment_store.h"

namespace mgardp {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

// FNV-1a of the field id, mixed into per-node fault seeds so two fields on
// one node draw independent fault streams.
std::uint64_t HashField(const std::string& field_id) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : field_id) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string SegmentName(const std::string& field_id, int level, int plane) {
  std::string out = field_id.empty() ? "<default>" : field_id;
  out += '/';
  out += container::KeyString(level, plane);
  return out;
}

}  // namespace

const char* NodeHealthToString(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy:
      return "healthy";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDown:
      return "down";
    case NodeHealth::kKilled:
      return "killed";
  }
  return "unknown";
}

ClusterBackend::ClusterBackend(ClusterOptions options)
    : options_(options),
      replication_(std::max(1, std::min(options.replication,
                                        options.num_nodes))),
      ring_(options.num_nodes, options.ring),
      retry_(options.retry) {
  assert(options_.num_nodes >= 1);
  retry_.set_sleep([](double) {});  // simulated cluster: never really wait
  nodes_.reserve(static_cast<std::size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    auto node = std::make_unique<Node>();
    node->id = i;
    nodes_.push_back(std::move(node));
  }
}

ClusterBackend::~ClusterBackend() { StopBackgroundScrub(); }

std::string ClusterBackend::name() const {
  return "cluster(n=" + std::to_string(options_.num_nodes) +
         ",r=" + std::to_string(replication_) + ")";
}

Result<std::string> ClusterBackend::NodeGet(Node& node,
                                            const std::string& field_id,
                                            int level, int plane) {
  std::shared_lock<std::shared_mutex> lock(node.storage_mu);
  auto it = node.fields.find(field_id);
  if (it == node.fields.end()) {
    return Status::NotFound("node " + std::to_string(node.id) +
                            " holds nothing of " +
                            SegmentName(field_id, level, plane));
  }
  return it->second->top->Get(level, plane);
}

Status ClusterBackend::NodePut(Node& node, const std::string& field_id,
                               int level, int plane, std::string payload) {
  std::unique_lock<std::shared_mutex> lock(node.storage_mu);
  auto it = node.fields.find(field_id);
  if (it == node.fields.end()) {
    auto store = std::make_unique<FieldStore>();
    if (options_.inject_faults) {
      FaultConfig config = options_.fault.ForNode(node.id);
      config.seed ^= HashField(field_id);
      store->faulty =
          std::make_unique<FaultInjectingBackend>(&store->memory, config);
      store->top = store->faulty.get();
    } else {
      store->top = &store->memory;
    }
    it = node.fields.emplace(field_id, std::move(store)).first;
  }
  // Straight into memory: injected faults are read-side media behavior.
  return it->second->memory.Put(level, plane, std::move(payload));
}

bool ClusterBackend::ShouldAttempt(Node& node, bool* probing) {
  *probing = false;
  std::lock_guard<std::mutex> lock(health_mu_);
  switch (node.health) {
    case NodeHealth::kKilled:
      return false;
    case NodeHealth::kDown:
      if (++node.skips_since_down >= options_.probe_after) {
        node.skips_since_down = 0;
        *probing = true;
        probes_.fetch_add(1, kRelaxed);
        return true;
      }
      return false;
    default:
      return true;
  }
}

void ClusterBackend::RecordNodeAlive(Node& node) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (node.health == NodeHealth::kKilled) {
    return;  // an in-flight read raced the kill; stay killed
  }
  node.consecutive_failures = 0;
  node.skips_since_down = 0;
  if (node.health == NodeHealth::kDown) {
    recoveries_.fetch_add(1, kRelaxed);
  }
  node.health = NodeHealth::kHealthy;
}

void ClusterBackend::RecordNodeFailure(Node& node) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (node.health == NodeHealth::kKilled) {
    return;
  }
  ++node.consecutive_failures;
  if (node.consecutive_failures >= options_.eviction_threshold) {
    if (node.health != NodeHealth::kDown) {
      node.health = NodeHealth::kDown;
      evictions_.fetch_add(1, kRelaxed);
    }
    node.skips_since_down = 0;
  } else {
    node.health = NodeHealth::kSuspect;
  }
}

bool ClusterBackend::LookupChecksum(const std::string& field_id, int level,
                                    int plane, std::uint32_t* crc) const {
  std::shared_lock<std::shared_mutex> lock(checksums_mu_);
  auto it = checksums_.find(std::make_tuple(field_id, level, plane));
  if (it == checksums_.end()) {
    return false;
  }
  *crc = it->second;
  return true;
}

Result<std::string> ClusterBackend::GetSegment(const std::string& field_id,
                                               int level, int plane) {
  MGARDP_TRACE_SPAN("cluster/get", "cluster");
  gets_.fetch_add(1, kRelaxed);
  const std::uint64_t hash = HashRing::KeyHash(field_id, level, plane);
  std::uint32_t expected_crc = 0;
  const bool known = LookupChecksum(field_id, level, plane, &expected_crc);

  // The failover walk is only visible as a whole: each replica attempt is
  // its own span below, and when the first candidate did not serve, the
  // full walk is recorded as an externally-timed "cluster/failover_walk"
  // interval — a retained request trace then shows exactly how long the
  // request spent walking dead or corrupt replicas.
  obs::Tracer& tracer = obs::GlobalTracer();
  const bool walk_traced = tracer.enabled();
  const auto walk_start = walk_traced ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};
  const auto record_failover_walk = [&] {
    if (!walk_traced) {
      return;
    }
    static obs::StageStats* const walk_stage =
        obs::GlobalTracer().GetOrCreateStage("cluster/failover_walk",
                                             "cluster");
    tracer.RecordInterval(walk_stage, walk_start,
                          std::chrono::steady_clock::now());
  };

  // Candidates passed over before the one that finally served: skipped
  // (killed/down), answered without the payload, or failed. Success with
  // any passed-over candidate ahead of it is a failover.
  int passed_over = 0;
  for (int node_id : ring_.WalkOrder(hash)) {
    Node& node = *nodes_[static_cast<std::size_t>(node_id)];
    bool probing = false;
    if (!ShouldAttempt(node, &probing)) {
      ++passed_over;
      continue;
    }
    (void)probing;  // the probe itself is counted inside ShouldAttempt
    int retries = 0;
    Result<std::string> outcome = [&] {
      MGARDP_TRACE_SPAN("cluster/replica_read", "cluster");
      return retry_.Run(
          [&] { return NodeGet(node, field_id, level, plane); },
          hash ^ static_cast<std::uint64_t>(node_id), &retries);
    }();
    if (retries > 0) {
      retries_.fetch_add(static_cast<std::uint64_t>(retries), kRelaxed);
      if (metrics_ != nullptr) {
        metrics_->OnRetries(retries);
      }
    }
    if (outcome.ok()) {
      RecordNodeAlive(node);
      if (options_.verify_checksums && known &&
          SegmentChecksum(level, plane, outcome.value()) != expected_crc) {
        // Bad replica: the node answered but its copy is corrupt. Fail
        // over without penalizing the node's reachability.
        ++passed_over;
        continue;
      }
      if (passed_over > 0) {
        failovers_.fetch_add(1, kRelaxed);
        if (metrics_ != nullptr) {
          metrics_->OnFailover();
        }
        record_failover_walk();
      }
      return outcome;
    }
    if (outcome.status().code() == StatusCode::kNotFound) {
      // A definitive answer: the node is alive, it just has no copy (it
      // joined the preference list after the write, or lost the segment).
      RecordNodeAlive(node);
      ++passed_over;
      continue;
    }
    // IOError (retries exhausted) or worse: the replica is unusable.
    RecordNodeFailure(node);
    ++passed_over;
  }

  if (known) {
    replicas_lost_.fetch_add(1, kRelaxed);
    if (metrics_ != nullptr) {
      metrics_->OnReplicaLost();
    }
    record_failover_walk();
    return Status::DataLoss("all replicas of segment " +
                            SegmentName(field_id, level, plane) + " lost");
  }
  return Status::NotFound("segment " + SegmentName(field_id, level, plane) +
                          " unknown to the cluster");
}

Status ClusterBackend::PutSegment(const std::string& field_id, int level,
                                  int plane, std::string payload) {
  MGARDP_TRACE_SPAN("cluster/put", "cluster");
  puts_.fetch_add(1, kRelaxed);
  {
    std::unique_lock<std::shared_mutex> lock(checksums_mu_);
    checksums_[std::make_tuple(field_id, level, plane)] =
        SegmentChecksum(level, plane, payload);
  }
  const std::uint64_t hash = HashRing::KeyHash(field_id, level, plane);
  int written = 0;
  for (int node_id : ring_.WalkOrder(hash)) {
    if (written >= replication_) {
      break;
    }
    Node& node = *nodes_[static_cast<std::size_t>(node_id)];
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      if (node.health == NodeHealth::kKilled ||
          node.health == NodeHealth::kDown) {
        continue;
      }
    }
    if (NodePut(node, field_id, level, plane, payload).ok()) {
      ++written;
    }
  }
  if (written == 0) {
    return Status::IOError("no live node accepted segment " +
                           SegmentName(field_id, level, plane));
  }
  if (written < replication_) {
    under_replicated_writes_.fetch_add(1, kRelaxed);
  }
  return Status::OK();
}

bool ClusterBackend::ContainsSegment(const std::string& field_id, int level,
                                     int plane) const {
  std::shared_lock<std::shared_mutex> lock(checksums_mu_);
  return checksums_.count(std::make_tuple(field_id, level, plane)) != 0;
}

std::vector<std::pair<int, int>> ClusterBackend::FieldKeys(
    const std::string& field_id) const {
  std::vector<std::pair<int, int>> keys;
  std::shared_lock<std::shared_mutex> lock(checksums_mu_);
  for (const auto& entry : checksums_) {
    if (std::get<0>(entry.first) == field_id) {
      keys.emplace_back(std::get<1>(entry.first), std::get<2>(entry.first));
    }
  }
  return keys;
}

void ClusterBackend::KillNode(int node_id) {
  Node& node = *nodes_[static_cast<std::size_t>(node_id)];
  std::lock_guard<std::mutex> lock(health_mu_);
  node.health = NodeHealth::kKilled;
  node.consecutive_failures = 0;
  node.skips_since_down = 0;
}

void ClusterBackend::ReviveNode(int node_id, bool wipe_data) {
  Node& node = *nodes_[static_cast<std::size_t>(node_id)];
  if (wipe_data) {
    std::unique_lock<std::shared_mutex> lock(node.storage_mu);
    node.fields.clear();
  }
  std::lock_guard<std::mutex> lock(health_mu_);
  node.health = NodeHealth::kHealthy;
  node.consecutive_failures = 0;
  node.skips_since_down = 0;
}

NodeHealth ClusterBackend::node_health(int node_id) const {
  const Node& node = *nodes_[static_cast<std::size_t>(node_id)];
  std::lock_guard<std::mutex> lock(health_mu_);
  return node.health;
}

ClusterBackend::ScrubReport ClusterBackend::ScrubRepair() {
  MGARDP_TRACE_SPAN("cluster/scrub", "cluster");
  ScrubReport report;
  // Snapshot the catalog; repairs below take per-node locks one at a time.
  std::vector<std::pair<std::tuple<std::string, int, int>, std::uint32_t>>
      catalog;
  {
    std::shared_lock<std::shared_mutex> lock(checksums_mu_);
    catalog.assign(checksums_.begin(), checksums_.end());
  }
  for (const auto& entry : catalog) {
    const std::string& field_id = std::get<0>(entry.first);
    const int level = std::get<1>(entry.first);
    const int plane = std::get<2>(entry.first);
    const std::uint32_t crc = entry.second;
    ++report.segments;

    const std::uint64_t hash = HashRing::KeyHash(field_id, level, plane);
    const std::vector<int> walk = ring_.WalkOrder(hash);

    // The key's current home: first R alive nodes of its preference list.
    std::vector<int> desired;
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      for (int node_id : walk) {
        if (static_cast<int>(desired.size()) >= replication_) {
          break;
        }
        const Node& node = *nodes_[static_cast<std::size_t>(node_id)];
        if (node.health != NodeHealth::kKilled &&
            node.health != NodeHealth::kDown) {
          desired.push_back(node_id);
        }
      }
    }

    // Find one verified copy anywhere alive, remembering which desired
    // nodes already hold one.
    std::string good;
    bool have_good = false;
    std::vector<int> missing = desired;
    for (int node_id : walk) {
      Node& node = *nodes_[static_cast<std::size_t>(node_id)];
      {
        std::lock_guard<std::mutex> lock(health_mu_);
        if (node.health == NodeHealth::kKilled ||
            node.health == NodeHealth::kDown) {
          continue;
        }
      }
      auto outcome = retry_.Run(
          [&] { return NodeGet(node, field_id, level, plane); },
          hash ^ static_cast<std::uint64_t>(node_id) ^ 0x5C3Bull);
      if (!outcome.ok() ||
          SegmentChecksum(level, plane, outcome.value()) != crc) {
        continue;
      }
      if (!have_good) {
        good = std::move(outcome).value();
        have_good = true;
      }
      missing.erase(std::remove(missing.begin(), missing.end(), node_id),
                    missing.end());
    }

    if (!have_good) {
      ++report.lost;
      continue;
    }
    if (missing.empty()) {
      continue;
    }
    ++report.under_replicated;
    for (int node_id : missing) {
      Node& node = *nodes_[static_cast<std::size_t>(node_id)];
      if (NodePut(node, field_id, level, plane, good).ok()) {
        ++report.repaired;
      }
    }
  }
  scrub_repaired_.fetch_add(report.repaired, kRelaxed);
  scrub_lost_.fetch_add(report.lost, kRelaxed);
  return report;
}

void ClusterBackend::StartBackgroundScrub(int period_ms) {
  StopBackgroundScrub();
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = false;
  }
  scrub_thread_ = std::thread([this, period_ms] {
    std::unique_lock<std::mutex> lock(scrub_mu_);
    while (!scrub_stop_) {
      scrub_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                         [this] { return scrub_stop_; });
      if (scrub_stop_) {
        break;
      }
      lock.unlock();
      ScrubRepair();
      lock.lock();
    }
  });
}

void ClusterBackend::StopBackgroundScrub() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) {
    scrub_thread_.join();
  }
}

ClusterBackend::Stats ClusterBackend::stats() const {
  Stats s;
  s.gets = gets_.load(kRelaxed);
  s.puts = puts_.load(kRelaxed);
  s.retries = retries_.load(kRelaxed);
  s.failovers = failovers_.load(kRelaxed);
  s.replicas_lost = replicas_lost_.load(kRelaxed);
  s.under_replicated_writes = under_replicated_writes_.load(kRelaxed);
  s.probes = probes_.load(kRelaxed);
  s.evictions = evictions_.load(kRelaxed);
  s.recoveries = recoveries_.load(kRelaxed);
  s.scrub_repaired = scrub_repaired_.load(kRelaxed);
  s.scrub_lost = scrub_lost_.load(kRelaxed);
  return s;
}

bool ClusterBackend::NodeContains(int node_id, const std::string& field_id,
                                  int level, int plane) const {
  const Node& node = *nodes_[static_cast<std::size_t>(node_id)];
  std::shared_lock<std::shared_mutex> lock(node.storage_mu);
  auto it = node.fields.find(field_id);
  return it != node.fields.end() && it->second->memory.Contains(level, plane);
}

std::vector<int> ClusterBackend::ReplicasFor(const std::string& field_id,
                                             int level, int plane) const {
  const std::uint64_t hash = HashRing::KeyHash(field_id, level, plane);
  std::vector<int> desired;
  std::lock_guard<std::mutex> lock(health_mu_);
  for (int node_id : ring_.WalkOrder(hash)) {
    if (static_cast<int>(desired.size()) >= replication_) {
      break;
    }
    const Node& node = *nodes_[static_cast<std::size_t>(node_id)];
    if (node.health != NodeHealth::kKilled &&
        node.health != NodeHealth::kDown) {
      desired.push_back(node_id);
    }
  }
  return desired;
}

FaultInjectingBackend* ClusterBackend::node_fault_backend(
    int node_id, const std::string& field_id) {
  Node& node = *nodes_[static_cast<std::size_t>(node_id)];
  std::shared_lock<std::shared_mutex> lock(node.storage_mu);
  auto it = node.fields.find(field_id);
  return it == node.fields.end() ? nullptr : it->second->faulty.get();
}

}  // namespace mgardp
