// Replicated sharded serving over N simulated storage nodes.
//
// ClusterBackend glues the consistent-hash ring (cluster/hash_ring.h) to
// the existing single-node backend stack: every node is an independent
// in-memory store, optionally wrapped in a FaultInjectingBackend whose
// fault stream is derived per node (FaultConfig::ForNode), so each node
// misbehaves independently and deterministically. On top sits one
// cluster-wide checksum table — the verifying layer — filled at Put time,
// so a corrupt replica is detected at the reader and failed over, exactly
// like VerifyingBackend over a single faulty store.
//
// Placement: a segment key (field, level, plane) hashes onto the ring, and
// its replica set is the first `replication` *alive* nodes of the key's
// preference list (WalkOrder). Writes go to that set; reads walk the full
// preference list so a read finds the data wherever a past write or a
// repair actually put it, no matter which nodes have died since.
//
// Reads: each candidate is tried through the shared RetryPolicy (transient
// IOErrors retried with deterministic backoff); a verified payload from a
// candidate after the first counts as a failover. Candidates that fail
// permanently accrue consecutive-failure counts and are evicted to kDown at
// a threshold; down nodes are skipped for `probe_after` encounters and then
// probed with a real read, returning to kHealthy on success. Only when
// every candidate fails does the read surface kDataLoss ("all replicas
// lost"), which the fault-tolerant reconstructor upstream degrades
// gracefully by truncating the level prefix.
//
// Scrub/repair: ScrubRepair() walks every key the cluster has accepted,
// finds a verified live copy, and re-replicates it to the key's *current*
// first-R-alive nodes, restoring the replication factor after a node death.
// StartBackgroundScrub runs that loop on a timer thread.
//
// Thread-safety: GetSegment/Contains/Keys and node lifecycle calls are safe
// from any number of threads, concurrently with PutSegment and the
// background scrub (per-node storage is guarded by a shared_mutex, health
// and the checksum table by their own locks). This is deliberately stronger
// than the single-node backends' read-only contract: the chaos harness
// kills nodes and repairs segments while the serving loop is reading.

#ifndef MGARDP_CLUSTER_CLUSTER_BACKEND_H_
#define MGARDP_CLUSTER_CLUSTER_BACKEND_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/hash_ring.h"
#include "service/service_metrics.h"
#include "storage/fault_injection.h"
#include "storage/storage_backend.h"
#include "util/retry.h"
#include "util/status.h"

namespace mgardp {

// Health of one simulated node, as the cluster currently believes it.
enum class NodeHealth {
  kHealthy,  // serving
  kSuspect,  // failed recently; still attempted
  kDown,     // evicted after consecutive failures; probed occasionally
  kKilled,   // administratively dead (chaos harness); never attempted
};

const char* NodeHealthToString(NodeHealth health);

struct ClusterOptions {
  int num_nodes = 4;
  int replication = 2;  // clamped to num_nodes
  HashRing::Options ring;
  RetryPolicy::Options retry;

  // When inject_faults is set, every node's store is wrapped in a
  // FaultInjectingBackend configured with fault.ForNode(node_id), so the
  // nodes draw independent deterministic fault streams from one base seed.
  bool inject_faults = false;
  FaultConfig fault;

  // Verify every read against the checksum recorded at Put time and treat
  // a mismatch as a failed replica (failover instead of returning garbage).
  bool verify_checksums = true;

  // Consecutive permanent read failures before a node is evicted to kDown.
  int eviction_threshold = 3;
  // A kDown node is skipped this many times, then probed with a real read.
  int probe_after = 8;
};

class ClusterBackend : public StorageBackend {
 public:
  explicit ClusterBackend(ClusterOptions options = ClusterOptions());
  ~ClusterBackend() override;

  ClusterBackend(const ClusterBackend&) = delete;
  ClusterBackend& operator=(const ClusterBackend&) = delete;

  // -- the general (field-qualified) interface -------------------------
  Result<std::string> GetSegment(const std::string& field_id, int level,
                                 int plane);
  Status PutSegment(const std::string& field_id, int level, int plane,
                    std::string payload);
  bool ContainsSegment(const std::string& field_id, int level,
                       int plane) const;
  std::vector<std::pair<int, int>> FieldKeys(
      const std::string& field_id) const;

  // -- StorageBackend over the default "" field ------------------------
  Result<std::string> Get(int level, int plane) override {
    return GetSegment(std::string(), level, plane);
  }
  Status Put(int level, int plane, std::string payload) override {
    return PutSegment(std::string(), level, plane, std::move(payload));
  }
  bool Contains(int level, int plane) const override {
    return ContainsSegment(std::string(), level, plane);
  }
  std::vector<std::pair<int, int>> Keys() const override {
    return FieldKeys(std::string());
  }
  std::string name() const override;

  // -- node lifecycle (the chaos harness) ------------------------------
  // Makes the node unreachable: reads skip it, writes avoid it.
  void KillNode(int node_id);
  // Brings a node back healthy; with `wipe_data` it returns empty, as a
  // replacement machine would, and relies on scrub/repair to refill.
  void ReviveNode(int node_id, bool wipe_data = false);
  NodeHealth node_health(int node_id) const;

  // -- scrub / repair --------------------------------------------------
  struct ScrubReport {
    std::uint64_t segments = 0;          // keys examined
    std::uint64_t under_replicated = 0;  // keys short of R live copies
    std::uint64_t repaired = 0;          // replica copies re-created
    std::uint64_t lost = 0;              // keys with no verified copy left
  };

  // One full pass: re-replicates every under-replicated segment onto its
  // current first-R-alive nodes. Safe concurrently with reads and writes.
  ScrubReport ScrubRepair();

  void StartBackgroundScrub(int period_ms);
  void StopBackgroundScrub();

  // -- observability ---------------------------------------------------
  struct Stats {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t retries = 0;        // transient-retries inside reads
    std::uint64_t failovers = 0;      // reads served past the 1st candidate
    std::uint64_t replicas_lost = 0;  // reads with no live replica at all
    std::uint64_t under_replicated_writes = 0;
    std::uint64_t probes = 0;      // reads attempted against kDown nodes
    std::uint64_t evictions = 0;   // health transitions into kDown
    std::uint64_t recoveries = 0;  // kDown nodes brought back by a probe
    std::uint64_t scrub_repaired = 0;
    std::uint64_t scrub_lost = 0;
  };
  Stats stats() const;

  // Mirrors failover/retry/loss events into shared service metrics
  // (retries_total, failovers_total, replicas_lost). Optional.
  void set_metrics(ServiceMetrics* metrics) { metrics_ = metrics; }

  int num_nodes() const { return options_.num_nodes; }
  int replication() const { return replication_; }
  const HashRing& ring() const { return ring_; }

  // -- test accessors --------------------------------------------------
  // Whether `node_id`'s local store holds the key (ignores health).
  bool NodeContains(int node_id, const std::string& field_id, int level,
                    int plane) const;
  // The key's current replica target: first `replication` alive nodes of
  // its preference list.
  std::vector<int> ReplicasFor(const std::string& field_id, int level,
                               int plane) const;
  // The node's fault layer, or nullptr when inject_faults is off or the
  // node has not stored anything for `field_id` yet.
  FaultInjectingBackend* node_fault_backend(int node_id,
                                            const std::string& field_id);

 private:
  // One field's storage stack on one node.
  struct FieldStore {
    MemoryBackend memory;
    std::unique_ptr<FaultInjectingBackend> faulty;  // set iff inject_faults
    StorageBackend* top = nullptr;  // faulty.get() or &memory
  };

  struct Node {
    int id = 0;
    // Guards `fields` and every backend under it: reads take shared,
    // writes (Put, repair, wipe) exclusive.
    mutable std::shared_mutex storage_mu;
    std::map<std::string, std::unique_ptr<FieldStore>> fields;
    // Health state, guarded by the cluster-wide health_mu_.
    NodeHealth health = NodeHealth::kHealthy;
    int consecutive_failures = 0;
    int skips_since_down = 0;
  };

  // Reads (level, plane) of `field_id` from one node's stack; NotFound
  // when the node never stored that field/key.
  Result<std::string> NodeGet(Node& node, const std::string& field_id,
                              int level, int plane);
  // Writes directly into the node's memory store (faults are read-side).
  Status NodePut(Node& node, const std::string& field_id, int level,
                 int plane, std::string payload);

  // Health bookkeeping. `probing` reports whether this attempt is a probe
  // of a kDown node.
  bool ShouldAttempt(Node& node, bool* probing);
  void RecordNodeAlive(Node& node);    // resets failures, recovers kDown
  void RecordNodeFailure(Node& node);  // may evict to kDown

  // Expected checksum recorded at Put time; false when the key is unknown.
  bool LookupChecksum(const std::string& field_id, int level, int plane,
                      std::uint32_t* crc) const;

  ClusterOptions options_;
  int replication_;
  HashRing ring_;
  RetryPolicy retry_;
  std::vector<std::unique_ptr<Node>> nodes_;

  mutable std::mutex health_mu_;

  // (field, level, plane) -> CRC recorded when the cluster accepted the
  // segment. Doubles as the catalog of every key the cluster owns.
  mutable std::shared_mutex checksums_mu_;
  std::map<std::tuple<std::string, int, int>, std::uint32_t> checksums_;

  ServiceMetrics* metrics_ = nullptr;

  // Background scrub thread.
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
  std::thread scrub_thread_;

  // Stats: relaxed atomics, snapshot via stats().
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> replicas_lost_{0};
  std::atomic<std::uint64_t> under_replicated_writes_{0};
  std::atomic<std::uint64_t> probes_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> scrub_repaired_{0};
  std::atomic<std::uint64_t> scrub_lost_{0};
};

// A StorageBackend view of one field on the cluster, so the per-field
// retrieval stack (sessions, caches, fault-tolerant reconstruction) plugs
// into replicated storage unchanged. The cluster must outlive the view.
class ClusterFieldView : public StorageBackend {
 public:
  ClusterFieldView(ClusterBackend* cluster, std::string field_id)
      : cluster_(cluster), field_id_(std::move(field_id)) {}

  Result<std::string> Get(int level, int plane) override {
    return cluster_->GetSegment(field_id_, level, plane);
  }
  Status Put(int level, int plane, std::string payload) override {
    return cluster_->PutSegment(field_id_, level, plane, std::move(payload));
  }
  bool Contains(int level, int plane) const override {
    return cluster_->ContainsSegment(field_id_, level, plane);
  }
  std::vector<std::pair<int, int>> Keys() const override {
    return cluster_->FieldKeys(field_id_);
  }
  std::string name() const override {
    return "cluster-view:" + field_id_;
  }

  const std::string& field_id() const { return field_id_; }

 private:
  ClusterBackend* cluster_;
  std::string field_id_;
};

}  // namespace mgardp

#endif  // MGARDP_CLUSTER_CLUSTER_BACKEND_H_
