#include "cluster/hash_ring.h"

#include <algorithm>
#include <cassert>

namespace mgardp {

namespace {

// SplitMix64 finalizer: full-avalanche mix so sequential (node, vnode)
// pairs land on uncorrelated ring positions.
std::uint64_t Avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// FNV-1a over the field id, so the key hash separates fields before the
// (level, plane) mix.
std::uint64_t HashField(const std::string& field_id) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : field_id) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

HashRing::HashRing(int num_nodes) : HashRing(num_nodes, Options()) {}

HashRing::HashRing(int num_nodes, Options options)
    : num_nodes_(num_nodes), options_(options) {
  assert(num_nodes_ >= 1);
  assert(options_.vnodes >= 1);
  points_.reserve(static_cast<std::size_t>(num_nodes_) *
                  static_cast<std::size_t>(options_.vnodes));
  for (int node = 0; node < num_nodes_; ++node) {
    for (int v = 0; v < options_.vnodes; ++v) {
      const std::uint64_t point = Avalanche(
          options_.seed ^
          (0xA24BAED4963EE407ULL * (static_cast<std::uint64_t>(node) + 1)) ^
          (0x9FB21C651E98DF25ULL * (static_cast<std::uint64_t>(v) + 1)));
      points_.emplace_back(point, node);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::uint64_t HashRing::KeyHash(const std::string& field_id, int level,
                                int plane) {
  std::uint64_t h = HashField(field_id);
  h ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(level) + 1);
  h ^= 0xC2B2AE3D27D4EB4FULL * (static_cast<std::uint64_t>(plane) + 1);
  return Avalanche(h);
}

std::vector<int> HashRing::WalkOrder(std::uint64_t key_hash) const {
  std::vector<int> order;
  order.reserve(num_nodes_);
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes_), false);
  const auto start = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(key_hash, 0),
      [](const std::pair<std::uint64_t, int>& a,
         const std::pair<std::uint64_t, int>& b) { return a.first < b.first; });
  const std::size_t n = points_.size();
  std::size_t i = static_cast<std::size_t>(start - points_.begin());
  if (i == n) {
    i = 0;  // key hashes past the last point: wrap to the ring's start
  }
  for (std::size_t walked = 0;
       walked < n && order.size() < static_cast<std::size_t>(num_nodes_);
       ++walked, i = (i + 1) % n) {
    const int node = points_[i].second;
    if (!seen[static_cast<std::size_t>(node)]) {
      seen[static_cast<std::size_t>(node)] = true;
      order.push_back(node);
    }
  }
  return order;
}

std::vector<int> HashRing::Replicas(std::uint64_t key_hash, int r) const {
  std::vector<int> order = WalkOrder(key_hash);
  if (r < static_cast<int>(order.size())) {
    order.resize(static_cast<std::size_t>(r < 0 ? 0 : r));
  }
  return order;
}

int HashRing::PrimaryFor(std::uint64_t key_hash) const {
  return WalkOrder(key_hash).front();
}

}  // namespace mgardp
