// Compression-experiment record collection (Sec. III-C step 1-2 and
// Sec. IV-A3): refactor each timestep once, run the baseline retrieval
// under a sweep of relative error bounds, and record everything the two
// models train on -- the achieved maximum error, the per-level bit-plane
// counts b_l, the per-level coefficient errors Err[l][b_l], the data
// features, and the level sketches.

#ifndef MGARDP_MODELS_TRAINING_DATA_H_
#define MGARDP_MODELS_TRAINING_DATA_H_

#include <string>
#include <vector>

#include "progressive/refactorer.h"
#include "progressive/reconstructor.h"
#include "sim/dataset.h"
#include "util/status.h"

namespace mgardp {

// One (timestep, error bound) observation.
struct RetrievalRecord {
  int timestep = 0;
  double requested_rel_error = 0.0;  // relative bound fed to the planner
  double requested_abs_error = 0.0;  // rel * data range
  double achieved_error = 0.0;       // actual max |orig - reconstructed|
  double estimated_error = 0.0;      // planner's (pessimistic) estimate
  std::size_t total_bytes = 0;       // retrieval size D
  std::vector<int> bitplanes;        // b_l per level
  std::vector<double> level_errors;  // Err[l][b_l] per level
  std::vector<double> features;      // data features F of this timestep
  std::vector<std::vector<double>> sketches;  // per-level |coef| sketch
  // True for synthetic "ladder" rows sampled at fixed prefixes rather than
  // planner outputs. They teach E-MGARD the error landscape at retrieval
  // states the greedy search passes through; D-MGARD (which learns the
  // planner's bound -> prefix mapping) ignores them.
  bool is_ladder = false;
};

// The paper's 81 relative error bounds: {1e-9, 2e-9, ..., 8e-1, 9e-1}
// (nine mantissas per decade over nine decades).
std::vector<double> PaperRelativeErrorBounds();

// A lighter sweep for tests/benches: `per_decade` mantissas over the same
// nine decades.
std::vector<double> SubsampledRelativeErrorBounds(int per_decade);

struct CollectOptions {
  std::vector<double> rel_bounds;  // defaults to PaperRelativeErrorBounds()
  RefactorOptions refactor;
  // Number of ladder depths per timestep (0 disables). Each depth d adds
  // two records: a uniform prefix (d, d, ..., d) and a coarse-biased
  // staircase prefix, covering the intermediate states of a greedy search.
  int ladder_points = 10;
};

// Runs the sweep over `timesteps` of `series` with the baseline
// TheoryEstimator planner. Reconstruction results are cached per distinct
// prefix, so bounds that map to the same plan cost one recompose.
Result<std::vector<RetrievalRecord>> CollectRecords(
    const FieldSeries& series, const std::vector<int>& timesteps,
    const CollectOptions& options = {});

// Writes records as CSV (one row per record, bitplanes as b0..b{L-1}).
Status WriteRecordsCsv(const std::vector<RetrievalRecord>& records,
                       const std::string& path);

}  // namespace mgardp

#endif  // MGARDP_MODELS_TRAINING_DATA_H_
