#include "models/dmgard.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "models/features.h"
#include "util/io.h"
#include "util/rng.h"

namespace mgardp {

namespace {

// Input layout for the level-l network: F, log10(err), the level's own
// magnitude (log10 of its max |coefficient| from the sketch), then the
// chained counts b_0..b_{l-1} (normalized by the plane count to keep them
// O(1) before standardization). The level magnitude is load-bearing: the
// planner's choice is approximately b_l ~ log2(level max) - log2(err) +
// const, so providing it turns the regression into a nearly linear map
// that transfers across timesteps instead of memorizing per-timestep
// feature vectors.
std::size_t InputDim(const DMgardConfig& config, int level) {
  return static_cast<std::size_t>(kNumDataFeatures) + 3 +
         (config.chained ? static_cast<std::size_t>(level) : 0);
}

}  // namespace

std::vector<double> DMgardModel::LevelInput(
    int level, const std::vector<double>& features,
    const std::vector<std::vector<double>>& sketches,
    double target_abs_error, const std::vector<double>& chain) const {
  std::vector<double> in;
  in.reserve(InputDim(config_, level));
  in.insert(in.end(), features.begin(), features.end());
  in.push_back(Log10Safe(target_abs_error));
  const double level_max =
      (level < static_cast<int>(sketches.size()) && !sketches[level].empty())
          ? sketches[level].back()
          : 0.0;
  in.push_back(Log10Safe(level_max));
  // The composite "how many decades of precision must this level provide"
  // feature; the planner's b_l is nearly linear in it.
  in.push_back(Log10Safe(level_max) - Log10Safe(target_abs_error));
  if (config_.chained) {
    for (int l = 0; l < level; ++l) {
      in.push_back(chain[l] / static_cast<double>(config_.num_planes));
    }
  }
  return in;
}

Result<DMgardModel> DMgardModel::TrainModel(
    const std::vector<RetrievalRecord>& records, DMgardConfig config,
    std::vector<dnn::TrainReport>* reports) {
  if (records.empty()) {
    return Status::Invalid("D-MGARD: no training records");
  }
  const int L = static_cast<int>(records.front().bitplanes.size());
  for (const RetrievalRecord& r : records) {
    if (static_cast<int>(r.bitplanes.size()) != L ||
        static_cast<int>(r.features.size()) != kNumDataFeatures) {
      return Status::Invalid("D-MGARD: inconsistent record shapes");
    }
  }

  DMgardModel model;
  model.config_ = config;
  model.scalers_.resize(L);
  model.target_scalers_.resize(L);
  model.models_.resize(L);
  if (reports != nullptr) {
    reports->clear();
    reports->resize(L);
  }

  // Bounds below the conservative floor all map to the same full-fetch
  // plan with the same achieved error; keep one copy so the floor regime
  // does not dominate the training distribution.
  std::vector<const RetrievalRecord*> rows;
  {
    std::set<std::pair<int, std::vector<int>>> seen;
    for (const RetrievalRecord& rec : records) {
      if (rec.is_ladder) {
        continue;  // ladder rows are not planner outputs
      }
      if (seen.emplace(rec.timestep, rec.bitplanes).second) {
        rows.push_back(&rec);
      }
    }
  }

  if (rows.empty()) {
    return Status::Invalid("D-MGARD: no planner records (only ladder rows)");
  }

  const std::size_t n = rows.size();
  for (int level = 0; level < L; ++level) {
    const std::size_t dim = InputDim(config, level);
    dnn::Matrix x(n, dim);
    dnn::Matrix y(n, 1);
    for (std::size_t r = 0; r < n; ++r) {
      const RetrievalRecord& rec = *rows[r];
      // Chained inputs use ground-truth counts during training (Fig. 6a).
      std::vector<double> chain(rec.bitplanes.begin(), rec.bitplanes.end());
      const std::vector<double> in = model.LevelInput(
          level, rec.features, rec.sketches, rec.achieved_error, chain);
      for (std::size_t c = 0; c < dim; ++c) {
        x(r, c) = in[c];
      }
      y(r, 0) = static_cast<double>(rec.bitplanes[level]);
    }
    model.scalers_[level].Fit(x);
    MGARDP_ASSIGN_OR_RETURN(dnn::Matrix xs,
                            model.scalers_[level].Transform(x));
    model.target_scalers_[level].Fit(y);
    MGARDP_ASSIGN_OR_RETURN(dnn::Matrix ys,
                            model.target_scalers_[level].Transform(y));

    Rng rng(config.train.seed + static_cast<std::uint64_t>(level) * 101);
    model.models_[level] =
        dnn::Mlp(dnn::MlpConfig::DMgardDefault(dim, config.hidden_width),
                 &rng);
    MGARDP_ASSIGN_OR_RETURN(
        dnn::TrainReport report,
        dnn::Train(&model.models_[level], xs, ys, config.train));
    if (reports != nullptr) {
      (*reports)[level] = std::move(report);
    }
  }
  return model;
}

double DMgardModel::RoundClamp(double raw) const {
  return std::clamp(std::round(raw), 0.0,
                    static_cast<double>(config_.num_planes));
}

Result<std::vector<std::vector<double>>> DMgardModel::PredictRawBatch(
    const std::vector<BatchRequest>& requests) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("D-MGARD: model not trained");
  }
  const int L = num_levels();
  const std::size_t n = requests.size();
  for (const BatchRequest& req : requests) {
    if (req.features == nullptr || req.sketches == nullptr) {
      return Status::Invalid("D-MGARD: batch request missing inputs");
    }
    if (static_cast<int>(req.features->size()) != kNumDataFeatures) {
      return Status::Invalid("D-MGARD: wrong feature count");
    }
    if (static_cast<int>(req.sketches->size()) < L) {
      return Status::Invalid("D-MGARD: missing level sketches");
    }
  }
  std::vector<std::vector<double>> raw(n, std::vector<double>(L, 0.0));
  // Per-request chain state; every request walks the levels in lockstep so
  // level l is ONE n-row forward pass. Row independence of the scaler and
  // network math makes each row bit-identical to a batch of one.
  std::vector<std::vector<double>> chains(n, std::vector<double>(L, 0.0));
  for (int level = 0; level < L; ++level) {
    const std::size_t dim = InputDim(config_, level);
    dnn::Matrix x(n, dim);
    for (std::size_t r = 0; r < n; ++r) {
      const std::vector<double> in =
          LevelInput(level, *requests[r].features, *requests[r].sketches,
                     requests[r].target_abs_error, chains[r]);
      MGARDP_CHECK_EQ(in.size(), dim);
      for (std::size_t c = 0; c < dim; ++c) {
        x(r, c) = in[c];
      }
    }
    MGARDP_ASSIGN_OR_RETURN(dnn::Matrix xs, scalers_[level].Transform(x));
    const dnn::Matrix out = models_[level].Predict(xs);
    for (std::size_t r = 0; r < n; ++r) {
      MGARDP_ASSIGN_OR_RETURN(
          raw[r][level],
          target_scalers_[level].InverseTransformValue(0, out(r, 0)));
      // Chained inference feeds the *rounded* prediction forward, matching
      // how the retrieval side will use it (Fig. 6b).
      chains[r][level] = RoundClamp(raw[r][level]);
    }
  }
  return raw;
}

Result<std::vector<std::vector<int>>> DMgardModel::PredictBatch(
    const std::vector<BatchRequest>& requests) const {
  MGARDP_ASSIGN_OR_RETURN(std::vector<std::vector<double>> raw,
                          PredictRawBatch(requests));
  std::vector<std::vector<int>> counts(raw.size());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    counts[r].resize(raw[r].size());
    for (std::size_t l = 0; l < raw[r].size(); ++l) {
      counts[r][l] = static_cast<int>(RoundClamp(raw[r][l]));
    }
  }
  return counts;
}

Result<std::vector<double>> DMgardModel::PredictRaw(
    const std::vector<double>& features,
    const std::vector<std::vector<double>>& sketches,
    double target_abs_error) const {
  MGARDP_ASSIGN_OR_RETURN(
      std::vector<std::vector<double>> raw,
      PredictRawBatch({BatchRequest{&features, &sketches, target_abs_error}}));
  return std::move(raw.front());
}

Result<std::vector<int>> DMgardModel::Predict(
    const std::vector<double>& features,
    const std::vector<std::vector<double>>& sketches,
    double target_abs_error) const {
  MGARDP_ASSIGN_OR_RETURN(
      std::vector<std::vector<int>> counts,
      PredictBatch({BatchRequest{&features, &sketches, target_abs_error}}));
  return std::move(counts.front());
}

std::string DMgardModel::Serialize() const {
  BinaryWriter w;
  w.Put<std::uint32_t>(0x444D4752);  // "DMGR"
  w.Put<std::uint64_t>(config_.hidden_width);
  w.Put<std::uint8_t>(config_.chained ? 1 : 0);
  w.Put<std::int32_t>(config_.num_planes);
  w.Put<std::int32_t>(num_levels());
  for (int l = 0; l < num_levels(); ++l) {
    scalers_[l].Serialize(&w);
    target_scalers_[l].Serialize(&w);
    models_[l].Serialize(&w);
  }
  return w.TakeBuffer();
}

Result<DMgardModel> DMgardModel::Deserialize(const std::string& in) {
  BinaryReader r(in);
  std::uint32_t magic = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&magic));
  if (magic != 0x444D4752) {
    return Status::Invalid("D-MGARD: bad magic");
  }
  DMgardModel model;
  std::uint64_t width = 0;
  std::uint8_t chained = 0;
  std::int32_t num_planes = 0, levels = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&width));
  MGARDP_RETURN_NOT_OK(r.Get(&chained));
  MGARDP_RETURN_NOT_OK(r.Get(&num_planes));
  MGARDP_RETURN_NOT_OK(r.Get(&levels));
  model.config_.hidden_width = width;
  model.config_.chained = chained != 0;
  model.config_.num_planes = num_planes;
  model.scalers_.resize(levels);
  model.target_scalers_.resize(levels);
  model.models_.resize(levels);
  for (int l = 0; l < levels; ++l) {
    MGARDP_RETURN_NOT_OK(model.scalers_[l].Deserialize(&r));
    MGARDP_RETURN_NOT_OK(model.target_scalers_[l].Deserialize(&r));
    MGARDP_RETURN_NOT_OK(model.models_[l].Deserialize(&r));
  }
  return model;
}

Result<std::vector<std::vector<int>>> PredictionErrors(
    const DMgardModel& model, const std::vector<RetrievalRecord>& records) {
  std::vector<std::vector<int>> errors;
  errors.reserve(records.size());
  for (const RetrievalRecord& rec : records) {
    if (rec.is_ladder) {
      continue;  // ladder rows are not planner outputs to predict
    }
    MGARDP_ASSIGN_OR_RETURN(
        std::vector<int> predicted,
        model.Predict(rec.features, rec.sketches, rec.achieved_error));
    if (predicted.size() != rec.bitplanes.size()) {
      return Status::Invalid("prediction/record level mismatch");
    }
    std::vector<int> err(predicted.size());
    for (std::size_t l = 0; l < predicted.size(); ++l) {
      err[l] = predicted[l] - rec.bitplanes[l];
    }
    errors.push_back(std::move(err));
  }
  return errors;
}

}  // namespace mgardp
