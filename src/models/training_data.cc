#include "models/training_data.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "models/features.h"
#include "progressive/error_estimator.h"
#include "util/stats.h"

namespace mgardp {

std::vector<double> PaperRelativeErrorBounds() {
  std::vector<double> bounds;
  bounds.reserve(81);
  for (int decade = -9; decade <= -1; ++decade) {
    for (int mantissa = 1; mantissa <= 9; ++mantissa) {
      bounds.push_back(static_cast<double>(mantissa) *
                       std::pow(10.0, decade));
    }
  }
  return bounds;
}

std::vector<double> SubsampledRelativeErrorBounds(int per_decade) {
  std::vector<double> bounds;
  for (int decade = -9; decade <= -1; ++decade) {
    for (int i = 0; i < per_decade; ++i) {
      const double mantissa =
          1.0 + 8.0 * static_cast<double>(i) /
                    std::max(1, per_decade - 1);
      bounds.push_back(mantissa * std::pow(10.0, decade));
    }
    if (per_decade == 1) {
      bounds.back() = std::pow(10.0, decade);
    }
  }
  return bounds;
}

Result<std::vector<RetrievalRecord>> CollectRecords(
    const FieldSeries& series, const std::vector<int>& timesteps,
    const CollectOptions& options) {
  std::vector<double> bounds = options.rel_bounds;
  if (bounds.empty()) {
    bounds = PaperRelativeErrorBounds();
  }
  Refactorer refactorer(options.refactor);
  TheoryEstimator theory;
  Reconstructor reconstructor(&theory);

  std::vector<RetrievalRecord> records;
  records.reserve(timesteps.size() * bounds.size());
  for (int t : timesteps) {
    if (t < 0 || t >= series.num_timesteps()) {
      std::ostringstream os;
      os << "timestep " << t << " outside series of "
         << series.num_timesteps();
      return Status::OutOfRange(os.str());
    }
    const Array3Dd& original = series.frames[t];
    MGARDP_ASSIGN_OR_RETURN(RefactoredField field,
                            refactorer.Refactor(original));
    const double range = field.data_summary.range();
    const std::vector<double> features =
        ExtractDataFeatures(field.data_summary);

    // Distinct prefixes reconstruct once.
    std::map<std::vector<int>, double> achieved_cache;
    auto achieved_for = [&](const std::vector<int>& prefix)
        -> Result<double> {
      auto it = achieved_cache.find(prefix);
      if (it == achieved_cache.end()) {
        MGARDP_ASSIGN_OR_RETURN(Array3Dd reconstructed,
                                ReconstructFromPrefix(field, prefix));
        const double err =
            MaxAbsError(original.vector(), reconstructed.vector());
        it = achieved_cache.emplace(prefix, err).first;
      }
      return it->second;
    };
    auto make_record = [&](const std::vector<int>& prefix, double achieved,
                           bool ladder) {
      RetrievalRecord rec;
      rec.timestep = t;
      rec.achieved_error = achieved;
      rec.total_bytes = SizeInterpreter(field.plane_sizes).TotalBytes(prefix);
      rec.bitplanes = prefix;
      rec.level_errors.resize(field.num_levels());
      for (int l = 0; l < field.num_levels(); ++l) {
        const auto& max_abs = field.level_errors[l].max_abs;
        const int b = std::clamp(prefix[l], 0,
                                 static_cast<int>(max_abs.size()) - 1);
        rec.level_errors[l] = max_abs[b];
      }
      rec.features = features;
      rec.sketches = field.level_sketches;
      rec.is_ladder = ladder;
      return rec;
    };
    for (double rel : bounds) {
      const double abs_bound = rel * range;
      if (!(abs_bound > 0.0)) {
        continue;  // constant fields have zero range; skip
      }
      MGARDP_ASSIGN_OR_RETURN(RetrievalPlan plan,
                              reconstructor.Plan(field, abs_bound));
      MGARDP_ASSIGN_OR_RETURN(double achieved, achieved_for(plan.prefix));
      RetrievalRecord rec = make_record(plan.prefix, achieved,
                                        /*ladder=*/false);
      rec.requested_rel_error = rel;
      rec.requested_abs_error = abs_bound;
      rec.estimated_error = plan.estimated_error;
      records.push_back(std::move(rec));
    }

    // Ladder rows: uniform and coarse-biased staircase prefixes spanning
    // shallow to deep retrieval states.
    const int B = options.refactor.num_planes;
    const int L = field.num_levels();
    for (int i = 0; i < options.ladder_points; ++i) {
      const int depth =
          1 + i * std::max(1, B / std::max(1, options.ladder_points));
      if (depth > B) {
        break;
      }
      std::vector<int> uniform(L, depth);
      MGARDP_ASSIGN_OR_RETURN(double u_err, achieved_for(uniform));
      records.push_back(make_record(uniform, u_err, /*ladder=*/true));

      std::vector<int> staircase(L);
      for (int l = 0; l < L; ++l) {
        staircase[l] = std::min(B, depth + 4 * (L - 1 - l));
      }
      MGARDP_ASSIGN_OR_RETURN(double s_err, achieved_for(staircase));
      records.push_back(make_record(staircase, s_err, /*ladder=*/true));
    }
  }
  return records;
}

Status WriteRecordsCsv(const std::vector<RetrievalRecord>& records,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open " + path);
  }
  const int L =
      records.empty() ? 0 : static_cast<int>(records.front().bitplanes.size());
  out << "timestep,requested_rel,requested_abs,achieved,estimated,bytes";
  for (int l = 0; l < L; ++l) {
    out << ",b" << l;
  }
  out << "\n";
  for (const RetrievalRecord& r : records) {
    out << r.timestep << "," << r.requested_rel_error << ","
        << r.requested_abs_error << "," << r.achieved_error << ","
        << r.estimated_error << "," << r.total_bytes;
    for (int b : r.bitplanes) {
      out << "," << b;
    }
    out << "\n";
  }
  return Status::OK();
}

}  // namespace mgardp
