// E-MGARD: learned per-level error mapping constants (Sec. III-D, Fig. 8).
//
// The baseline bound err <= C * sum_l Err[l][b_l] applies one conservative
// constant to every level even though the levels' error contributions
// differ by orders of magnitude (Fig. 7). E-MGARD replaces it with
// Equation 7, err <= sum_l C_l * Err[l][b_l], where each C_l is predicted
// by an encoder network from a summary of that level's coefficient
// distribution plus the retrieval state (Err[l][b_l], b_l). Training
// targets distribute each record's *actual* achieved error across its
// levels, so the learned estimate tracks reality instead of the worst case.
//
// The model plugs into the greedy retriever through
// LearnedConstantsEstimator, replacing TheoryEstimator.

#ifndef MGARDP_MODELS_EMGARD_H_
#define MGARDP_MODELS_EMGARD_H_

#include <string>
#include <vector>

#include "dnn/mlp.h"
#include "dnn/scaler.h"
#include "dnn/trainer.h"
#include "models/training_data.h"
#include "progressive/error_estimator.h"
#include "util/status.h"

namespace mgardp {

struct EMgardConfig {
  int num_planes = 32;  // clamp for b_l inputs
  // Predicted constants are clamped to [min_constant, max_constant]. The
  // constants are error amplification ratios (actual error over the sum of
  // per-level coefficient errors), an O(1) quantity; the clamp stops a
  // wild extrapolation from going negative or into theory-bound territory.
  double min_constant = 0.1;
  double max_constant = 1e2;
  // Paper: lr 1e-5, batch 64, 300 epochs. The small default batch gives
  // enough optimizer steps at reduced record counts too.
  dnn::TrainConfig train{.epochs = 300,
                         .batch_size = 16,
                         .learning_rate = 1e-5,
                         .loss = "huber",
                         .optimizer = "adam",
                         .seed = 23};
};

class EMgardModel {
 public:
  EMgardModel() = default;

  // Trains one encoder network per level. Records must share level count
  // and sketch size.
  static Result<EMgardModel> TrainModel(
      const std::vector<RetrievalRecord>& records, EMgardConfig config = {},
      std::vector<dnn::TrainReport>* reports = nullptr);

  int num_levels() const { return static_cast<int>(models_.size()); }
  const EMgardConfig& config() const { return config_; }

  // Predicted mapping constant C_l for a level in a given retrieval state.
  Result<double> PredictConstant(int level,
                                 const std::vector<double>& sketch,
                                 double level_error, int bitplanes) const;

  // One retrieval state to score for a level; the sketch must outlive the
  // batch call.
  struct ConstantRequest {
    const std::vector<double>* sketch = nullptr;
    double level_error = 0.0;
    int bitplanes = 0;
  };

  // Batched constant prediction: one multi-row forward pass per call. Row
  // r is bit-identical to PredictConstant on request r alone.
  Result<std::vector<double>> PredictConstantBatch(
      int level, const std::vector<ConstantRequest>& requests) const;

  // The raw (unscaled) network input row for one retrieval state — what
  // the inference batcher queues. Feed rows back through
  // PredictConstantKernel to score them.
  std::vector<double> BuildConstantInput(const std::vector<double>& sketch,
                                         double level_error,
                                         int bitplanes) const;

  // Scores N stacked BuildConstantInput rows with level `level`'s network
  // in one forward pass; returns an N x 1 matrix of clamped constants.
  // This is the batch kernel shared by every prediction surface, so every
  // path — single, batched, cross-request coalesced — runs the identical
  // math. Thread-safe: no model state is written.
  Result<dnn::Matrix> PredictConstantKernel(int level,
                                            const dnn::Matrix& inputs) const;

  // Calibrated multiplier applied to the summed estimate. The greedy search
  // stops at the first state whose estimate meets the bound, which is
  // biased toward states the model is optimistic about (winner's curse);
  // the margin is the high quantile of actual/estimated over the training
  // rows, so the bias is paid for up front instead of as overshoot.
  double safety_margin() const { return safety_margin_; }

  std::string Serialize() const;
  static Result<EMgardModel> Deserialize(const std::string& in);

 private:
  EMgardConfig config_;
  std::vector<dnn::StandardScaler> scalers_;
  // Targets (log10 C_l) are standardized so training converges from a
  // zero-centered start at any epoch budget.
  std::vector<dnn::StandardScaler> target_scalers_;
  // Inference uses the cache-free Mlp::Predict; sharing a const model
  // across concurrent sessions is safe.
  std::vector<dnn::Mlp> models_;
  double safety_margin_ = 1.0;

  std::vector<double> LevelInput(const std::vector<double>& sketch,
                                 double level_error, int bitplanes) const;
};

// ErrorEstimator implementing Equation 7 with the learned constants.
class LearnedConstantsEstimator : public ErrorEstimator {
 public:
  // `model` must outlive the estimator.
  explicit LearnedConstantsEstimator(const EMgardModel* model)
      : model_(model) {}

  // +infinity when the model cannot evaluate a level (shape mismatch
  // between the artifact and the trained model); TryEstimate carries the
  // underlying Status.
  double Estimate(const RefactoredField& field,
                  const std::vector<int>& prefix) const override;
  Result<double> TryEstimate(const RefactoredField& field,
                             const std::vector<int>& prefix) const override;
  std::string name() const override { return "e-mgard"; }

 private:
  const EMgardModel* model_;
};

}  // namespace mgardp

#endif  // MGARDP_MODELS_EMGARD_H_
