#include "models/features.h"

#include <cmath>

namespace mgardp {

double Log10Safe(double v) { return std::log10(std::fabs(v) + 1e-30); }

std::vector<double> ExtractDataFeatures(const FieldSummary& summary) {
  std::vector<double> f;
  f.reserve(kNumDataFeatures);
  f.push_back(Log10Safe(summary.range()));
  f.push_back(Log10Safe(summary.abs_max));
  f.push_back(Log10Safe(summary.stddev));
  f.push_back(Log10Safe(summary.abs_mean));
  f.push_back(summary.mean == 0.0 && summary.stddev == 0.0
                  ? 0.0
                  : summary.mean / (summary.stddev + 1e-30));
  f.push_back(std::tanh(summary.skewness));   // bounded shape moments
  f.push_back(std::tanh(summary.kurtosis / 10.0));
  f.push_back(Log10Safe(static_cast<double>(summary.count)));
  // Degenerate fields (e.g. values near the double overflow threshold) can
  // produce inf/NaN moments; clamp so the DNN input is always finite.
  for (double& v : f) {
    if (std::isnan(v)) {
      v = 0.0;
    } else if (!std::isfinite(v)) {
      v = v > 0.0 ? 1e3 : -1e3;
    }
  }
  return f;
}

std::vector<double> LogSketch(const std::vector<double>& sketch) {
  std::vector<double> out(sketch.size());
  for (std::size_t i = 0; i < sketch.size(); ++i) {
    out[i] = Log10Safe(sketch[i]);
  }
  return out;
}

}  // namespace mgardp
