// Statistical data features F fed to the DNN models (Table I / Sec. III-C).
//
// D-MGARD conditions its bit-plane predictions on a fixed-length summary of
// the field so one trained model generalizes across timesteps of the same
// application. E-MGARD conditions each level's mapping-constant prediction
// on a log-scaled quantile sketch of that level's coefficient distribution.

#ifndef MGARDP_MODELS_FEATURES_H_
#define MGARDP_MODELS_FEATURES_H_

#include <vector>

#include "util/stats.h"

namespace mgardp {

// Number of values in the data-feature vector F.
inline constexpr int kNumDataFeatures = 8;

// Field-level features: log-compressed extrema plus shape moments. All
// entries are finite for any input (zero fields included).
std::vector<double> ExtractDataFeatures(const FieldSummary& summary);

// log10(|v| + 1e-30): compresses the many-orders-of-magnitude dynamic range
// of errors and coefficient magnitudes into a scale MLPs can learn on.
double Log10Safe(double v);

// Level-coefficient features for E-MGARD: element-wise log10 of the
// absolute-value quantile sketch.
std::vector<double> LogSketch(const std::vector<double>& sketch);

}  // namespace mgardp

#endif  // MGARDP_MODELS_FEATURES_H_
