#include "models/emgard.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "models/features.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/stats.h"

namespace mgardp {

std::vector<double> EMgardModel::LevelInput(
    const std::vector<double>& sketch, double level_error,
    int bitplanes) const {
  std::vector<double> in = LogSketch(sketch);
  in.push_back(Log10Safe(level_error));
  in.push_back(static_cast<double>(bitplanes) /
               static_cast<double>(config_.num_planes));
  return in;
}

Result<EMgardModel> EMgardModel::TrainModel(
    const std::vector<RetrievalRecord>& records, EMgardConfig config,
    std::vector<dnn::TrainReport>* reports) {
  if (records.empty()) {
    return Status::Invalid("E-MGARD: no training records");
  }
  const int L = static_cast<int>(records.front().bitplanes.size());
  const std::size_t sketch_size = records.front().sketches.empty()
                                      ? 0
                                      : records.front().sketches[0].size();
  if (sketch_size == 0) {
    return Status::Invalid("E-MGARD: records carry no level sketches");
  }
  for (const RetrievalRecord& r : records) {
    if (static_cast<int>(r.bitplanes.size()) != L ||
        static_cast<int>(r.sketches.size()) != L ||
        r.level_errors.size() != r.bitplanes.size()) {
      return Status::Invalid("E-MGARD: inconsistent record shapes");
    }
  }

  EMgardModel model;
  model.config_ = config;
  model.scalers_.resize(L);
  model.target_scalers_.resize(L);
  model.models_.resize(L);
  if (reports != nullptr) {
    reports->clear();
    reports->resize(L);
  }

  // One row per distinct (timestep, prefix): bounds below the conservative
  // floor all produce the same full-fetch record.
  std::vector<const RetrievalRecord*> rows;
  {
    std::set<std::pair<int, std::vector<int>>> seen;
    for (const RetrievalRecord& rec : records) {
      if (seen.emplace(rec.timestep, rec.bitplanes).second) {
        rows.push_back(&rec);
      }
    }
  }

  for (int level = 0; level < L; ++level) {
    // Target: the record's observed amplification ratio
    //   C = achieved_err / sum_j Err[j][b_j],
    // i.e. the error is attributed to the levels in proportion to their
    // coefficient errors (with that target, sum_l C_l Err[l][b_l] equals
    // the achieved error exactly). The ratio is an O(1) quantity -- unlike
    // a uniform attribution, which blames levels already at their
    // quantization floor and produces wild constants. The per-level
    // networks learn how the ratio deviates with the level's coefficient
    // distribution and retrieval depth.
    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (const RetrievalRecord* rec_ptr : rows) {
      const RetrievalRecord& rec = *rec_ptr;
      double err_sum = 0.0;
      for (double e : rec.level_errors) {
        err_sum += e;
      }
      if (err_sum <= 0.0 || rec.level_errors[level] <= 0.0 ||
          rec.achieved_error <= 0.0) {
        continue;  // nothing to learn from a zero-error level
      }
      const double c_target = rec.achieved_error / err_sum;
      inputs.push_back(model.LevelInput(rec.sketches[level],
                                        rec.level_errors[level],
                                        rec.bitplanes[level]));
      targets.push_back(std::log10(std::clamp(c_target, config.min_constant,
                                               config.max_constant)));
    }
    if (inputs.empty()) {
      return Status::Invalid("E-MGARD: no usable rows for a level");
    }
    const std::size_t dim = inputs.front().size();
    dnn::Matrix x(inputs.size(), dim);
    dnn::Matrix y(inputs.size(), 1);
    for (std::size_t r = 0; r < inputs.size(); ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        x(r, c) = inputs[r][c];
      }
      y(r, 0) = targets[r];
    }
    model.scalers_[level].Fit(x);
    MGARDP_ASSIGN_OR_RETURN(dnn::Matrix xs,
                            model.scalers_[level].Transform(x));
    model.target_scalers_[level].Fit(y);
    MGARDP_ASSIGN_OR_RETURN(dnn::Matrix ys,
                            model.target_scalers_[level].Transform(y));

    Rng rng(config.train.seed + static_cast<std::uint64_t>(level) * 211);
    model.models_[level] =
        dnn::Mlp(dnn::MlpConfig::EMgardDefault(dim), &rng);
    MGARDP_ASSIGN_OR_RETURN(
        dnn::TrainReport report,
        dnn::Train(&model.models_[level], xs, ys, config.train));
    if (reports != nullptr) {
      (*reports)[level] = std::move(report);
    }
  }

  // Calibrate the safety margin: 95th percentile of actual/estimated over
  // the (deduplicated) training rows, floored at 1. The max (quantile 1.0)
  // makes the estimate conservative on every training row; violations can
  // then only come from genuinely out-of-distribution retrieval states.
  std::vector<double> ratios;
  for (const RetrievalRecord* rec : rows) {
    double est = 0.0;
    for (int l = 0; l < L; ++l) {
      const double level_err = rec->level_errors[l];
      if (level_err <= 0.0) {
        continue;
      }
      MGARDP_ASSIGN_OR_RETURN(
          double c, model.PredictConstant(l, rec->sketches[l], level_err,
                                          rec->bitplanes[l]));
      est += c * level_err;
    }
    if (est > 0.0 && rec->achieved_error > 0.0) {
      ratios.push_back(rec->achieved_error / est);
    }
  }
  if (!ratios.empty()) {
    model.safety_margin_ = std::max(1.0, Quantile(ratios, 1.0));
  }
  return model;
}

std::vector<double> EMgardModel::BuildConstantInput(
    const std::vector<double>& sketch, double level_error,
    int bitplanes) const {
  return LevelInput(sketch, level_error, bitplanes);
}

Result<dnn::Matrix> EMgardModel::PredictConstantKernel(
    int level, const dnn::Matrix& inputs) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("E-MGARD: model not trained");
  }
  if (level < 0 || level >= num_levels()) {
    return Status::OutOfRange("E-MGARD: level out of range");
  }
  if (inputs.cols() != scalers_[level].num_features()) {
    return Status::Invalid("E-MGARD: sketch size differs from training");
  }
  MGARDP_ASSIGN_OR_RETURN(dnn::Matrix xs, scalers_[level].Transform(inputs));
  const dnn::Matrix out = models_[level].Predict(xs);
  dnn::Matrix constants(out.rows(), 1);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    MGARDP_ASSIGN_OR_RETURN(
        const double log_c,
        target_scalers_[level].InverseTransformValue(0, out(r, 0)));
    constants(r, 0) = std::clamp(std::pow(10.0, log_c),
                                 config_.min_constant, config_.max_constant);
  }
  return constants;
}

Result<std::vector<double>> EMgardModel::PredictConstantBatch(
    int level, const std::vector<ConstantRequest>& requests) const {
  if (models_.empty()) {
    return Status::FailedPrecondition("E-MGARD: model not trained");
  }
  if (level < 0 || level >= num_levels()) {
    return Status::OutOfRange("E-MGARD: level out of range");
  }
  const std::size_t n = requests.size();
  const std::size_t dim = scalers_[level].num_features();
  dnn::Matrix x(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    if (requests[r].sketch == nullptr) {
      return Status::Invalid("E-MGARD: batch request missing sketch");
    }
    const std::vector<double> in = LevelInput(
        *requests[r].sketch, requests[r].level_error, requests[r].bitplanes);
    if (in.size() != dim) {
      return Status::Invalid("E-MGARD: sketch size differs from training");
    }
    for (std::size_t c = 0; c < dim; ++c) {
      x(r, c) = in[c];
    }
  }
  MGARDP_ASSIGN_OR_RETURN(dnn::Matrix constants,
                          PredictConstantKernel(level, x));
  std::vector<double> out(n);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = constants(r, 0);
  }
  return out;
}

Result<double> EMgardModel::PredictConstant(int level,
                                            const std::vector<double>& sketch,
                                            double level_error,
                                            int bitplanes) const {
  MGARDP_ASSIGN_OR_RETURN(
      std::vector<double> out,
      PredictConstantBatch(level,
                           {ConstantRequest{&sketch, level_error, bitplanes}}));
  return out.front();
}

std::string EMgardModel::Serialize() const {
  BinaryWriter w;
  w.Put<std::uint32_t>(0x454D4752);  // "EMGR"
  w.Put<std::int32_t>(config_.num_planes);
  w.Put<double>(config_.min_constant);
  w.Put<double>(config_.max_constant);
  w.Put<double>(safety_margin_);
  w.Put<std::int32_t>(num_levels());
  for (int l = 0; l < num_levels(); ++l) {
    scalers_[l].Serialize(&w);
    target_scalers_[l].Serialize(&w);
    models_[l].Serialize(&w);
  }
  return w.TakeBuffer();
}

Result<EMgardModel> EMgardModel::Deserialize(const std::string& in) {
  BinaryReader r(in);
  std::uint32_t magic = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&magic));
  if (magic != 0x454D4752) {
    return Status::Invalid("E-MGARD: bad magic");
  }
  EMgardModel model;
  std::int32_t num_planes = 0, levels = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&num_planes));
  MGARDP_RETURN_NOT_OK(r.Get(&model.config_.min_constant));
  MGARDP_RETURN_NOT_OK(r.Get(&model.config_.max_constant));
  MGARDP_RETURN_NOT_OK(r.Get(&model.safety_margin_));
  MGARDP_RETURN_NOT_OK(r.Get(&levels));
  model.config_.num_planes = num_planes;
  model.scalers_.resize(levels);
  model.target_scalers_.resize(levels);
  model.models_.resize(levels);
  for (int l = 0; l < levels; ++l) {
    MGARDP_RETURN_NOT_OK(model.scalers_[l].Deserialize(&r));
    MGARDP_RETURN_NOT_OK(model.target_scalers_[l].Deserialize(&r));
    MGARDP_RETURN_NOT_OK(model.models_[l].Deserialize(&r));
  }
  return model;
}

Result<double> LearnedConstantsEstimator::TryEstimate(
    const RefactoredField& field, const std::vector<int>& prefix) const {
  MGARDP_CHECK(model_ != nullptr);
  MGARDP_CHECK_EQ(prefix.size(),
                  static_cast<std::size_t>(field.num_levels()));
  double est = 0.0;
  const int L = std::min(field.num_levels(), model_->num_levels());
  for (int l = 0; l < L; ++l) {
    const auto& max_abs = field.level_errors[l].max_abs;
    const int b =
        std::clamp(prefix[l], 0, static_cast<int>(max_abs.size()) - 1);
    const double level_err = max_abs[b];
    if (level_err <= 0.0) {
      continue;
    }
    MGARDP_ASSIGN_OR_RETURN(
        double c,
        model_->PredictConstant(l, field.level_sketches[l], level_err, b));
    est += c * level_err;
  }
  return est * model_->safety_margin();
}

double LearnedConstantsEstimator::Estimate(
    const RefactoredField& field, const std::vector<int>& prefix) const {
  // A prefix the model cannot score is infinitely inaccurate to the
  // planner; callers that need the cause use TryEstimate.
  auto result = TryEstimate(field, prefix);
  return result.ok() ? result.value()
                     : std::numeric_limits<double>::infinity();
}

}  // namespace mgardp
