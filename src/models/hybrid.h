// Hybrid D-MGARD + E-MGARD planning (the combination the paper names as
// future work in Sec. IV-E).
//
// D-MGARD predicts a full prefix in one shot but cannot verify it;
// E-MGARD verifies any prefix cheaply but reaches its stop state through
// many greedy steps. The hybrid uses D-MGARD's prediction as the starting
// point and lets the E-MGARD estimator correct it:
//   * if the learned estimate at the predicted prefix exceeds the bound,
//     extend greedily (the usual accuracy-efficiency search),
//   * otherwise trim planes from the end of each level while the estimate
//     stays within the bound, recovering bytes D-MGARD over-provisioned.

#ifndef MGARDP_MODELS_HYBRID_H_
#define MGARDP_MODELS_HYBRID_H_

#include "models/dmgard.h"
#include "models/emgard.h"
#include "progressive/reconstructor.h"

namespace mgardp {

// Plans a retrieval for `error_bound` using both models. `estimator` must
// be the LearnedConstantsEstimator (or any estimator) used for
// verification; `dmgard` supplies the warm start. When `dmgard_plan` is
// non-null it receives the uncorrected warm-start plan (the raw D-MGARD
// prediction), so callers — the audit layer in particular — can measure
// how far the estimator's correction moved it.
Result<RetrievalPlan> PlanHybrid(const RefactoredField& field,
                                 double error_bound,
                                 const DMgardModel& dmgard,
                                 const ErrorEstimator& estimator,
                                 RetrievalPlan* dmgard_plan = nullptr);

}  // namespace mgardp

#endif  // MGARDP_MODELS_HYBRID_H_
