#include "models/hybrid.h"

#include <algorithm>

#include "models/features.h"

namespace mgardp {

Result<RetrievalPlan> PlanHybrid(const RefactoredField& field,
                                 double error_bound,
                                 const DMgardModel& dmgard,
                                 const ErrorEstimator& estimator,
                                 RetrievalPlan* dmgard_plan) {
  if (!(error_bound > 0.0)) {
    return Status::Invalid("error_bound must be positive");
  }
  // Warm start from the one-shot D-MGARD prediction.
  MGARDP_ASSIGN_OR_RETURN(
      std::vector<int> prefix,
      dmgard.Predict(ExtractDataFeatures(field.data_summary),
                     field.level_sketches, error_bound));
  if (static_cast<int>(prefix.size()) != field.num_levels()) {
    return Status::Invalid("D-MGARD level count does not match the field");
  }
  SizeInterpreter sizes = MakeSizeInterpreter(field);
  Reconstructor verifier(&estimator);

  double est = estimator.Estimate(field, prefix);
  if (dmgard_plan != nullptr) {
    dmgard_plan->prefix = prefix;
    dmgard_plan->total_bytes = sizes.TotalBytes(prefix);
    dmgard_plan->estimated_error = est;
  }
  if (est > error_bound) {
    // Under-provisioned: extend greedily from the warm start.
    MGARDP_ASSIGN_OR_RETURN(RetrievalPlan plan,
                            verifier.PlanRefinement(field, prefix,
                                                    error_bound));
    return plan;
  }

  // Over-provisioned: trim. Each round, drop the plane block with the best
  // bytes-recovered per error-increase that keeps the estimate within the
  // bound; stop when no single-level trim fits.
  bool trimmed = true;
  while (trimmed) {
    trimmed = false;
    int best_level = -1;
    std::size_t best_bytes = 0;
    double best_est = est;
    for (int l = 0; l < field.num_levels(); ++l) {
      if (prefix[l] <= 0) {
        continue;
      }
      std::vector<int> candidate = prefix;
      --candidate[l];
      const double cand_est = estimator.Estimate(field, candidate);
      if (cand_est > error_bound) {
        continue;
      }
      const std::size_t bytes = sizes.PlaneSize(l, candidate[l]);
      if (best_level < 0 || bytes > best_bytes) {
        best_level = l;
        best_bytes = bytes;
        best_est = cand_est;
      }
    }
    if (best_level >= 0) {
      --prefix[best_level];
      est = best_est;
      trimmed = true;
    }
  }

  RetrievalPlan plan;
  plan.prefix = std::move(prefix);
  plan.estimated_error = est;
  plan.total_bytes = sizes.TotalBytes(plan.prefix);
  return plan;
}

}  // namespace mgardp
