// D-MGARD: chained multi-output regression (CMOR) prediction of per-level
// bit-plane counts (Sec. III-C, Fig. 6).
//
// One MLP per coefficient level. Level l's inputs are the data features F,
// the log of the target achieved error, and -- this is the chaining that
// exploits the strong inter-level correlation of Fig. 5a -- the bit-plane
// counts of levels 0..l-1 (ground truth during training, predictions during
// inference). Each MLP has six hidden layers with leaky ReLU and trains
// under the Huber loss with delta = 1 (Equation 5).

#ifndef MGARDP_MODELS_DMGARD_H_
#define MGARDP_MODELS_DMGARD_H_

#include <string>
#include <vector>

#include "dnn/mlp.h"
#include "dnn/scaler.h"
#include "dnn/trainer.h"
#include "models/training_data.h"
#include "util/status.h"

namespace mgardp {

struct DMgardConfig {
  // Width of each of the six hidden layers (the paper does not state it).
  std::size_t hidden_width = 32;
  // true = CMOR (paper design); false = independent per-level MLPs
  // (ablation baseline from Sec. III-C's discussion of plain MLPs).
  bool chained = true;
  // Bit-planes per level, used to clamp predictions.
  int num_planes = 32;
  dnn::TrainConfig train{.epochs = 300,
                         .batch_size = 256,
                         .learning_rate = 5e-5,
                         .loss = "huber",
                         .optimizer = "adam",
                         .seed = 11};
};

class DMgardModel {
 public:
  DMgardModel() = default;

  // Trains the per-level chain on compression-experiment records. All
  // records must share the same level count.
  static Result<DMgardModel> TrainModel(
      const std::vector<RetrievalRecord>& records, DMgardConfig config = {},
      std::vector<dnn::TrainReport>* reports = nullptr);

  int num_levels() const { return static_cast<int>(models_.size()); }
  const DMgardConfig& config() const { return config_; }

  // Sequential chained inference: returns the rounded, clamped bit-plane
  // count per level for a requested achieved error. `sketches` are the
  // per-level |coefficient| quantile sketches from the refactored field's
  // metadata (each level's network receives its own level's magnitude,
  // which is what makes the error -> plane-count mapping generalize across
  // timesteps).
  Result<std::vector<int>> Predict(
      const std::vector<double>& features,
      const std::vector<std::vector<double>>& sketches,
      double target_abs_error) const;

  // Raw (unrounded) model outputs, for prediction-error analysis.
  Result<std::vector<double>> PredictRaw(
      const std::vector<double>& features,
      const std::vector<std::vector<double>>& sketches,
      double target_abs_error) const;

  // One independent prediction request; the pointees must outlive the
  // batch call. Requests may come from unrelated retrieval sessions.
  struct BatchRequest {
    const std::vector<double>* features = nullptr;
    const std::vector<std::vector<double>>* sketches = nullptr;
    double target_abs_error = 0.0;
  };

  // Batched chained inference: all requests advance through the level
  // chain together, so each level runs ONE multi-row forward pass instead
  // of one tiny pass per request. Row r of the result is bit-identical to
  // Predict/PredictRaw on request r alone (the scaler and network math are
  // row-independent). Predict/PredictRaw are the batch-of-one wrappers —
  // there is a single chained loop, so the rounding/clamping fed forward
  // through the chain cannot drift between paths.
  Result<std::vector<std::vector<int>>> PredictBatch(
      const std::vector<BatchRequest>& requests) const;
  Result<std::vector<std::vector<double>>> PredictRawBatch(
      const std::vector<BatchRequest>& requests) const;

  // Weight round-trip.
  std::string Serialize() const;
  static Result<DMgardModel> Deserialize(const std::string& in);

 private:
  DMgardConfig config_;
  // One (scaler, network) pair per level; scalers standardize the level's
  // input columns. Targets are standardized as well (target_scalers_) so
  // the network trains from a zero-centered start regardless of the epoch
  // budget; predictions are mapped back before rounding.
  std::vector<dnn::StandardScaler> scalers_;
  std::vector<dnn::StandardScaler> target_scalers_;
  // Inference goes through the cache-free Mlp::Predict, so the networks
  // stay const-correct and safe to share across concurrent sessions.
  std::vector<dnn::Mlp> models_;

  // The one rounding/clamping rule: raw output -> plane count, used for
  // both the chain feed-forward and the final Predict results.
  double RoundClamp(double raw) const;

  std::vector<double> LevelInput(int level,
                                 const std::vector<double>& features,
                                 const std::vector<std::vector<double>>& sketches,
                                 double target_abs_error,
                                 const std::vector<double>& chain) const;
};

// Per-record, per-level signed prediction error (predicted - actual) of the
// model on `records` -- the quantity plotted in Figs. 9-11.
Result<std::vector<std::vector<int>>> PredictionErrors(
    const DMgardModel& model, const std::vector<RetrievalRecord>& records);

}  // namespace mgardp

#endif  // MGARDP_MODELS_DMGARD_H_
