#include "dnn/scaler.h"

#include <cmath>

namespace mgardp {
namespace dnn {

void StandardScaler::Fit(const Matrix& data) {
  MGARDP_CHECK_GT(data.rows(), 0u);
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      mean_[c] += data(r, c);
    }
  }
  for (double& m : mean_) {
    m /= static_cast<double>(n);
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = data(r, c) - mean_[c];
      std_[c] += dv * dv;
    }
  }
  frozen_.assign(d, false);
  for (std::size_t c = 0; c < d; ++c) {
    std_[c] = std::sqrt(std_[c] / static_cast<double>(n));
    // Freeze on a *relative* threshold: a column that is constant up to
    // floating-point summation noise would otherwise get a ~1e-16 scale,
    // and any inference-time shift in it would be amplified into garbage.
    if (std_[c] <= 1e-9 * (std::fabs(mean_[c]) + 1.0)) {
      std_[c] = 1.0;
      frozen_[c] = true;
    }
  }
}

namespace {

Status WidthMismatch(const char* op, std::size_t got, std::size_t fitted) {
  return Status::Invalid("scaler: " + std::string(op) + " width " +
                         std::to_string(got) + " != fitted width " +
                         std::to_string(fitted));
}

}  // namespace

Result<Matrix> StandardScaler::Transform(const Matrix& data) const {
  if (data.cols() != mean_.size()) {
    return WidthMismatch("Transform", data.cols(), mean_.size());
  }
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = frozen_[c] ? 0.0 : (out(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

Result<Matrix> StandardScaler::InverseTransform(const Matrix& data) const {
  if (data.cols() != mean_.size()) {
    return WidthMismatch("InverseTransform", data.cols(), mean_.size());
  }
  Matrix out = data;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = out(r, c) * std_[c] + mean_[c];
    }
  }
  return out;
}

Result<double> StandardScaler::TransformValue(std::size_t col,
                                              double v) const {
  if (col >= mean_.size()) {
    return Status::Invalid("scaler: column " + std::to_string(col) +
                           " out of range for " +
                           std::to_string(mean_.size()) + " fitted columns");
  }
  return frozen_[col] ? 0.0 : (v - mean_[col]) / std_[col];
}

Result<double> StandardScaler::InverseTransformValue(std::size_t col,
                                                     double v) const {
  if (col >= mean_.size()) {
    return Status::Invalid("scaler: column " + std::to_string(col) +
                           " out of range for " +
                           std::to_string(mean_.size()) + " fitted columns");
  }
  return v * std_[col] + mean_[col];
}

void StandardScaler::Serialize(BinaryWriter* w) const {
  w->PutVector(mean_);
  w->PutVector(std_);
  std::vector<std::uint8_t> frozen(frozen_.begin(), frozen_.end());
  w->PutVector(frozen);
}

Status StandardScaler::Deserialize(BinaryReader* r) {
  MGARDP_RETURN_NOT_OK(r->GetVector(&mean_));
  MGARDP_RETURN_NOT_OK(r->GetVector(&std_));
  std::vector<std::uint8_t> frozen;
  MGARDP_RETURN_NOT_OK(r->GetVector(&frozen));
  frozen_.assign(frozen.begin(), frozen.end());
  if (mean_.size() != std_.size() || mean_.size() != frozen_.size()) {
    return Status::Invalid("scaler: field size mismatch");
  }
  return Status::OK();
}

}  // namespace dnn
}  // namespace mgardp
