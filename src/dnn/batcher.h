// Cross-request inference batching.
//
// Under concurrent serving load every in-flight session runs its own
// per-level MLP forward passes, and those multiplies are far below the
// thread pool's parallelism threshold — concurrent load degenerates to one
// tiny scalar GEMM per caller, each paying full allocation and dispatch
// overhead for a few thousand MACs. InferenceBatcher coalesces the feature
// rows of concurrent callers into one N-row matrix per key and runs a
// single cache-blocked GEMM over it, amortizing every fixed cost across
// the batch.
//
// Keys partition the queue: rows only ever batch with rows submitted under
// the same key, and the serving layer keys by (model id, version, level) —
// so a registry hot swap can never mix versions inside one batch, and the
// old version's leftover rows flush through their own kernel.
//
// Flush policy: a batch executes the moment it reaches max_batch rows (the
// filling submitter runs it inline — no handoff latency), when
// max_delay_ms has elapsed since its first row, or when a waiter has
// ceded the core claim_after_yields times (every runnable submitter had
// its chance to join) — in the latter two cases the waiter claims the
// batch and runs it itself (leader/follower). Waits are two-phase: a
// bounded yield-poll while the batch is forming (yields hand the core
// straight to submitters), then a single futex park on the done flag once
// some thread is executing — no condition variable, no per-poll lock. A
// thread-local ScopedInferenceDeadline (set by the scheduler around
// request processing) clamps the delay, so a request on a tight deadline
// never donates more latency to batch formation than its deadline
// affords.
//
// Determinism: results are bit-identical to unbatched prediction whenever
// the kernel's per-row math is row-independent (true of the scaler + MLP
// forward stack: every per-element accumulation order is row-local), and
// the clock is injectable so tests drive the delay path manually.

#ifndef MGARDP_DNN_BATCHER_H_
#define MGARDP_DNN_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dnn/matrix.h"
#include "util/status.h"

namespace mgardp {
namespace dnn {

// Time source for batch-delay decisions. Waiters poll Now() between
// yields, so a clock only needs to answer "what time is it" — injectable
// so tests drive the timeout flush deterministically instead of sleeping.
class BatchClock {
 public:
  virtual ~BatchClock() = default;
  virtual std::chrono::steady_clock::time_point Now() const = 0;
};

// Wall-clock implementation used in production.
class RealBatchClock : public BatchClock {
 public:
  std::chrono::steady_clock::time_point Now() const override {
    return std::chrono::steady_clock::now();
  }
};

// Test clock: Now() only moves when Advance() is called. Since waiters
// poll, flush outcomes are a pure function of the advanced time, never of
// scheduling.
class ManualBatchClock : public BatchClock {
 public:
  explicit ManualBatchClock(
      std::chrono::steady_clock::time_point start =
          std::chrono::steady_clock::time_point{})
      : now_(start) {}

  std::chrono::steady_clock::time_point Now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void Advance(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
  }

 private:
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point now_;
};

// Declares, for the current thread, how much wall time the enclosing
// request can still afford; the batcher clamps its batching delay to the
// remaining budget. The scheduler installs one around request processing
// with the request's deadline. Nesting keeps the tighter budget. A budget
// <= 0 means "no deadline" and installs nothing.
class ScopedInferenceDeadline {
 public:
  explicit ScopedInferenceDeadline(double budget_ms);
  ~ScopedInferenceDeadline();

  ScopedInferenceDeadline(const ScopedInferenceDeadline&) = delete;
  ScopedInferenceDeadline& operator=(const ScopedInferenceDeadline&) = delete;

  // The current thread's remaining budget in ms; +infinity when no
  // deadline is installed.
  static double BudgetMs();

 private:
  bool engaged_ = false;
  double previous_ = 0.0;
};

// Coalesces same-key feature rows from concurrent threads into single
// multi-row kernel calls. Thread-safe; one instance serves every model
// version (keys keep them apart).
class InferenceBatcher {
 private:
  struct BatchState;  // one forming/executing batch (defined in batcher.cc)

 public:
  // N stacked input rows -> one output row per input row (any width).
  // Must be row-independent for batching to be exact; called with no
  // batcher lock held, possibly from several threads for different keys.
  using Kernel = std::function<Result<Matrix>(const Matrix&)>;

  struct Options {
    // Rows that trigger an immediate inline flush by the submitter.
    std::size_t max_batch = 16;
    // How long the first row of a batch may wait for company.
    double max_delay_ms = 0.2;
    // Adaptive early flush: a waiter that has ceded the core this many
    // times claims its batch without waiting out max_delay — each yield
    // already gave every runnable submitter a chance to join, so further
    // waiting only buys latency. Set to SIZE_MAX for strict timer-only
    // flushing (what the deterministic clock tests exercise). max_delay
    // stays the upper bound either way.
    std::size_t claim_after_yields = 2;
    // Time source; nullptr uses a process-wide RealBatchClock.
    BatchClock* clock = nullptr;
    // Called once per executed batch with (rows, queue delay in ms of the
    // oldest row). Runs outside the batcher lock.
    std::function<void(std::size_t, double)> observer;
  };

  struct Stats {
    std::uint64_t rows = 0;      // rows submitted
    std::uint64_t batches = 0;   // kernel invocations
    std::uint64_t max_batch_rows = 0;
  };

  InferenceBatcher();  // default Options
  explicit InferenceBatcher(Options options);
  // Flushes everything still queued so no ticket is left hanging.
  ~InferenceBatcher();

  InferenceBatcher(const InferenceBatcher&) = delete;
  InferenceBatcher& operator=(const InferenceBatcher&) = delete;

  class Ticket {
   public:
    Ticket() = default;
    bool valid() const { return batch_ != nullptr; }

   private:
    friend class InferenceBatcher;
    std::shared_ptr<BatchState> batch_;
    std::size_t row_ = 0;
  };

  // Queues one feature row under `key`. Every row submitted under one key
  // must use a kernel that accepts the same row width (the first row's
  // kernel runs the whole batch). May execute the batch inline when this
  // row fills it. The returned ticket must be passed to Wait exactly once.
  Ticket SubmitAsync(const std::string& key, std::vector<double> row,
                     Kernel kernel);

  // Blocks until the ticket's batch has executed (claiming and running it
  // on this thread if its delay expires first) and returns the output row,
  // or the kernel's error Status for every row of the failed batch.
  Result<std::vector<double>> Wait(const Ticket& ticket);

  // SubmitAsync + Wait.
  Result<std::vector<double>> Submit(const std::string& key,
                                     std::vector<double> row, Kernel kernel);

  // Immediately executes every queued batch whose key starts with
  // `prefix` ("" = all). Used when a model version is swapped out: the
  // outgoing version's rows flush through their own kernel now instead of
  // waiting out their delay.
  void Drain(const std::string& prefix = "");

  // Rows currently queued (all keys).
  std::size_t pending_rows() const;
  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  // Runs `batch` (already detached from forming_) and publishes results.
  void Execute(const std::shared_ptr<BatchState>& batch);

  Options options_;
  BatchClock* clock_;  // options_.clock or the shared real clock

  mutable std::mutex mu_;
  // Forming (not yet executing) batch per key.
  std::map<std::string, std::shared_ptr<BatchState>> forming_;
  Stats stats_;
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_BATCHER_H_
