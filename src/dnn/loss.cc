#include "dnn/loss.h"

#include <cmath>

#include "util/logging.h"

namespace mgardp {
namespace dnn {

namespace {
void CheckShapes(const Matrix& pred, const Matrix& target) {
  MGARDP_CHECK_EQ(pred.rows(), target.rows());
  MGARDP_CHECK_EQ(pred.cols(), target.cols());
  MGARDP_CHECK_GT(pred.size(), 0u);
}
}  // namespace

double MseLoss::Value(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.vector()[i] - target.vector()[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pred.size());
}

Matrix MseLoss::Grad(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  Matrix g(pred.rows(), pred.cols());
  const double scale = 2.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    g.vector()[i] = scale * (pred.vector()[i] - target.vector()[i]);
  }
  return g;
}

double MaeLoss::Value(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    sum += std::fabs(pred.vector()[i] - target.vector()[i]);
  }
  return sum / static_cast<double>(pred.size());
}

Matrix MaeLoss::Grad(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  Matrix g(pred.rows(), pred.cols());
  const double scale = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.vector()[i] - target.vector()[i];
    g.vector()[i] = d > 0.0 ? scale : (d < 0.0 ? -scale : 0.0);
  }
  return g;
}

double HuberLoss::Value(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = std::fabs(pred.vector()[i] - target.vector()[i]);
    if (d < delta_) {
      sum += 0.5 * d * d;
    } else {
      sum += delta_ * (d - 0.5 * delta_);
    }
  }
  return sum / static_cast<double>(pred.size());
}

Matrix HuberLoss::Grad(const Matrix& pred, const Matrix& target) const {
  CheckShapes(pred, target);
  Matrix g(pred.rows(), pred.cols());
  const double scale = 1.0 / static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.vector()[i] - target.vector()[i];
    if (std::fabs(d) < delta_) {
      g.vector()[i] = scale * d;
    } else {
      g.vector()[i] = scale * (d > 0.0 ? delta_ : -delta_);
    }
  }
  return g;
}

std::unique_ptr<Loss> MakeLoss(const std::string& name) {
  if (name == "mse") {
    return std::make_unique<MseLoss>();
  }
  if (name == "mae") {
    return std::make_unique<MaeLoss>();
  }
  if (name == "huber") {
    return std::make_unique<HuberLoss>(1.0);
  }
  MGARDP_CHECK(false) << "unknown loss: " << name;
  return nullptr;
}

}  // namespace dnn
}  // namespace mgardp
