// Per-column standardization of features/targets (zero mean, unit
// variance). Models trained on standardized inputs are serialized together
// with their scalers so inference applies the identical transform.

#ifndef MGARDP_DNN_SCALER_H_
#define MGARDP_DNN_SCALER_H_

#include <vector>

#include "dnn/matrix.h"
#include "util/io.h"
#include "util/status.h"

namespace mgardp {
namespace dnn {

class StandardScaler {
 public:
  StandardScaler() = default;

  // Learns per-column mean and standard deviation from `data`. Columns
  // with zero variance carried no information during training, so
  // Transform maps them to zero for ANY input -- otherwise a shift in such
  // a column at inference time (e.g. a different grid resolution) would
  // push the network into a region it never saw.
  void Fit(const Matrix& data);

  bool fitted() const { return !mean_.empty(); }
  std::size_t num_features() const { return mean_.size(); }

  // (x - mean) / std, column-wise. Status::Invalid when `data`'s width
  // differs from the fitted width — a mismatched feature vector would
  // otherwise silently pair values with the wrong column statistics.
  Result<Matrix> Transform(const Matrix& data) const;
  // x * std + mean; same width validation.
  Result<Matrix> InverseTransform(const Matrix& data) const;

  // Single-column helpers for target scaling; Status::Invalid when `col`
  // is outside the fitted columns.
  Result<double> TransformValue(std::size_t col, double v) const;
  Result<double> InverseTransformValue(std::size_t col, double v) const;

  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
  std::vector<bool> frozen_;  // columns with zero training variance
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_SCALER_H_
