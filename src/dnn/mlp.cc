#include "dnn/mlp.h"

#include "obs/tracer.h"

namespace mgardp {
namespace dnn {

MlpConfig MlpConfig::DMgardDefault(std::size_t input_dim, std::size_t width) {
  MlpConfig c;
  c.input_dim = input_dim;
  c.hidden_dims.assign(6, width);  // six fully connected hidden layers
  c.output_dim = 1;                // one bit-plane count per level model
  c.leaky_slope = 0.01;
  return c;
}

MlpConfig MlpConfig::EMgardDefault(std::size_t input_dim) {
  MlpConfig c;
  c.input_dim = input_dim;
  // The paper's encoder funnels 2048 -> 512 -> 128 -> 8 for 512^3 inputs;
  // we scale the funnel to our sketch-sized inputs but keep the 8-wide
  // latent bottleneck, then a scalar head predicts log C_l.
  c.hidden_dims = {4 * input_dim, input_dim, 32, 8};
  c.output_dim = 1;
  c.leaky_slope = 0.0;  // plain ReLU per Fig. 8
  return c;
}

Mlp::Mlp(const MlpConfig& config, Rng* rng) : config_(config) {
  MGARDP_CHECK_GT(config_.input_dim, 0u);
  MGARDP_CHECK_GT(config_.output_dim, 0u);
  Build(rng);
}

void Mlp::Build(Rng* rng) {
  layers_.clear();
  if (config_.dropout > 0.0 && dropout_rng_ == nullptr) {
    dropout_rng_ = std::make_unique<Rng>(0x647270u);  // fixed seed: "drp"
  }
  std::size_t in = config_.input_dim;
  for (std::size_t h : config_.hidden_dims) {
    if (rng != nullptr) {
      layers_.push_back(std::make_unique<Linear>(in, h, rng));
    } else {
      layers_.push_back(std::make_unique<Linear>(in, h));
    }
    layers_.push_back(std::make_unique<LeakyRelu>(config_.leaky_slope));
    if (config_.dropout > 0.0) {
      layers_.push_back(
          std::make_unique<Dropout>(config_.dropout, dropout_rng_.get()));
    }
    in = h;
  }
  if (rng != nullptr) {
    layers_.push_back(std::make_unique<Linear>(in, config_.output_dim, rng));
  } else {
    layers_.push_back(std::make_unique<Linear>(in, config_.output_dim));
  }
}

Matrix Mlp::Forward(const Matrix& x) {
  MGARDP_TRACE_SPAN("dnn/forward", "dnn");
  MGARDP_CHECK(initialized());
  // The first layer consumes `x` directly: the old `Matrix h = x;` warmup
  // paid one full input copy per call on the inference hot path.
  Matrix h = layers_.front()->Forward(x);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
  }
  return h;
}

Matrix Mlp::Predict(const Matrix& x) const {
  MGARDP_TRACE_SPAN("dnn/predict", "dnn");
  MGARDP_CHECK(initialized());
  Matrix h = layers_.front()->Infer(x);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    h = layers_[i]->Infer(h);
  }
  return h;
}

void Mlp::Backward(const Matrix& grad_out) {
  MGARDP_CHECK(initialized());
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

void Mlp::SetTraining(bool training) {
  for (auto& layer : layers_) {
    layer->SetTraining(training);
  }
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) {
    layer->ZeroGrad();
  }
}

std::vector<Matrix*> Mlp::Params() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<Matrix*> Mlp::Grads() {
  std::vector<Matrix*> out;
  for (auto& layer : layers_) {
    for (Matrix* g : layer->Grads()) {
      out.push_back(g);
    }
  }
  return out;
}

std::size_t Mlp::NumParameters() {
  std::size_t n = 0;
  for (Matrix* p : Params()) {
    n += p->size();
  }
  return n;
}

void Mlp::Serialize(BinaryWriter* w) const {
  w->Put<std::uint64_t>(config_.input_dim);
  std::vector<std::uint64_t> hidden(config_.hidden_dims.begin(),
                                    config_.hidden_dims.end());
  w->PutVector(hidden);
  w->Put<std::uint64_t>(config_.output_dim);
  w->Put<double>(config_.leaky_slope);
  w->Put<double>(config_.dropout);
  // Weights, in layer order.
  for (const auto& layer : layers_) {
    for (Matrix* p : const_cast<Layer&>(*layer).Params()) {
      w->PutVector(p->vector());
    }
  }
}

Status Mlp::Deserialize(BinaryReader* r) {
  std::uint64_t input_dim = 0, output_dim = 0;
  std::vector<std::uint64_t> hidden;
  double slope = 0.0;
  MGARDP_RETURN_NOT_OK(r->Get(&input_dim));
  MGARDP_RETURN_NOT_OK(r->GetVector(&hidden));
  MGARDP_RETURN_NOT_OK(r->Get(&output_dim));
  MGARDP_RETURN_NOT_OK(r->Get(&slope));
  double dropout = 0.0;
  MGARDP_RETURN_NOT_OK(r->Get(&dropout));
  config_.dropout = dropout;
  config_.input_dim = input_dim;
  config_.hidden_dims.assign(hidden.begin(), hidden.end());
  config_.output_dim = output_dim;
  config_.leaky_slope = slope;
  if (config_.input_dim == 0 || config_.output_dim == 0) {
    return Status::Invalid("mlp: bad dimensions in serialized form");
  }
  Build(nullptr);
  for (auto& layer : layers_) {
    for (Matrix* p : layer->Params()) {
      std::vector<double> values;
      MGARDP_RETURN_NOT_OK(r->GetVector(&values));
      if (values.size() != p->size()) {
        return Status::Invalid("mlp: weight blob size mismatch");
      }
      p->vector() = std::move(values);
    }
  }
  return Status::OK();
}

}  // namespace dnn
}  // namespace mgardp
