// Regression losses: MSE, MAE, and the Huber loss the paper selects
// (Equation 4/5; delta = 1 gave the best accuracy in their experiments).
// Values are means over every element of the batch.

#ifndef MGARDP_DNN_LOSS_H_
#define MGARDP_DNN_LOSS_H_

#include <memory>
#include <string>

#include "dnn/matrix.h"

namespace mgardp {
namespace dnn {

class Loss {
 public:
  virtual ~Loss() = default;
  // Mean loss over all elements.
  virtual double Value(const Matrix& pred, const Matrix& target) const = 0;
  // dLoss/dPred (already divided by the element count).
  virtual Matrix Grad(const Matrix& pred, const Matrix& target) const = 0;
  virtual std::string name() const = 0;
};

class MseLoss : public Loss {
 public:
  double Value(const Matrix& pred, const Matrix& target) const override;
  Matrix Grad(const Matrix& pred, const Matrix& target) const override;
  std::string name() const override { return "mse"; }
};

class MaeLoss : public Loss {
 public:
  double Value(const Matrix& pred, const Matrix& target) const override;
  Matrix Grad(const Matrix& pred, const Matrix& target) const override;
  std::string name() const override { return "mae"; }
};

class HuberLoss : public Loss {
 public:
  explicit HuberLoss(double delta = 1.0) : delta_(delta) {}
  double Value(const Matrix& pred, const Matrix& target) const override;
  Matrix Grad(const Matrix& pred, const Matrix& target) const override;
  std::string name() const override { return "huber"; }
  double delta() const { return delta_; }

 private:
  double delta_;
};

// Factory by name ("mse" | "mae" | "huber"); huber uses delta = 1.
std::unique_ptr<Loss> MakeLoss(const std::string& name);

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_LOSS_H_
