#include "dnn/batcher.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "obs/request_trace.h"
#include "obs/tracer.h"

namespace mgardp {
namespace dnn {

namespace {

BatchClock* SharedRealClock() {
  static RealBatchClock clock;
  return &clock;
}

// The current thread's inference-delay budget. Static over a scope rather
// than counting down: it bounds the *scale* of delay a request may donate
// to batch formation, which is what the deadline trade-off needs.
thread_local double t_inference_budget_ms =
    std::numeric_limits<double>::infinity();

std::chrono::steady_clock::duration MsDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

ScopedInferenceDeadline::ScopedInferenceDeadline(double budget_ms) {
  if (budget_ms <= 0.0) {
    return;  // no deadline
  }
  engaged_ = true;
  previous_ = t_inference_budget_ms;
  // Nested scopes keep the tighter budget.
  t_inference_budget_ms = std::min(previous_, budget_ms);
}

ScopedInferenceDeadline::~ScopedInferenceDeadline() {
  if (engaged_) {
    t_inference_budget_ms = previous_;
  }
}

double ScopedInferenceDeadline::BudgetMs() { return t_inference_budget_ms; }

struct InferenceBatcher::BatchState {
  std::string key;
  Kernel kernel;
  std::vector<double> rows;  // row-major, num_rows x width
  std::size_t width = 0;
  std::size_t num_rows = 0;
  std::chrono::steady_clock::time_point created;
  // The flush deadline as a steady_clock tick count. Written under the
  // batcher lock (creation, deadline tightening); read lock-free by the
  // polling waiters' fast path, which only takes the lock once the
  // deadline has passed.
  std::atomic<std::chrono::steady_clock::rep> flush_at_ticks{0};
  // Detached from forming_ and owned by an executing thread. Set under the
  // batcher lock exactly once, by whichever thread takes the batch; read
  // lock-free by pollers to skip the lock while the leader executes.
  std::atomic<bool> claimed{false};
  // Published (release) after status/out are final; waiters poll it with
  // acquire loads and may then read the results without the lock.
  std::atomic<bool> done{false};
  Status status = Status::OK();
  Matrix out;
  // Request contexts of submitters that carried one (request tracing on).
  // Appended under the batcher lock while forming; read by the executor
  // after detach, when no further joiner can arrive. The executed batch
  // span is appended to EVERY joiner with the full set of joined trace
  // ids as span links — the per-request lanes then show exactly which
  // strangers shared the kernel call.
  std::vector<std::shared_ptr<obs::RequestContext>> joiners;
};

InferenceBatcher::InferenceBatcher() : InferenceBatcher(Options()) {}

InferenceBatcher::InferenceBatcher(Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : SharedRealClock()) {
  MGARDP_CHECK_GT(options_.max_batch, 0u);
}

InferenceBatcher::~InferenceBatcher() { Drain(""); }

InferenceBatcher::Ticket InferenceBatcher::SubmitAsync(
    const std::string& key, std::vector<double> row, Kernel kernel) {
  MGARDP_CHECK(!row.empty());
  std::shared_ptr<BatchState> to_run;
  Ticket ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<BatchState>& slot = forming_[key];
    const double budget = ScopedInferenceDeadline::BudgetMs();
    if (slot == nullptr) {
      slot = std::make_shared<BatchState>();
      slot->key = key;
      slot->kernel = std::move(kernel);
      slot->width = row.size();
      slot->created = clock_->Now();
      slot->flush_at_ticks.store(
          (slot->created + MsDuration(std::min(options_.max_delay_ms, budget)))
              .time_since_epoch()
              .count(),
          std::memory_order_relaxed);
    } else {
      MGARDP_CHECK_EQ(row.size(), slot->width)
          << "inference batcher: row width changed under key " << key;
      if (std::isfinite(budget)) {
        // A tighter-deadline joiner pulls the whole batch forward; waiting
        // past its budget to serve earlier rows would invert priorities.
        // Waiters re-read the deadline every poll, so the earlier time
        // takes effect without a wakeup.
        const auto clamped =
            (clock_->Now() + MsDuration(budget)).time_since_epoch().count();
        if (clamped < slot->flush_at_ticks.load(std::memory_order_relaxed)) {
          slot->flush_at_ticks.store(clamped, std::memory_order_relaxed);
        }
      }
    }
    ticket.batch_ = slot;
    ticket.row_ = slot->num_rows;
    if (obs::GlobalTracer().request_tracing_enabled()) {
      std::shared_ptr<obs::RequestContext> ctx =
          obs::ScopedRequestContext::CurrentShared();
      if (ctx != nullptr) {
        slot->joiners.push_back(std::move(ctx));
      }
    }
    slot->rows.insert(slot->rows.end(), row.begin(), row.end());
    ++slot->num_rows;
    ++stats_.rows;
    if (slot->num_rows >= options_.max_batch) {
      // Full: the filling submitter executes inline — no wakeup latency.
      slot->claimed.store(true, std::memory_order_relaxed);
      to_run = slot;
      forming_.erase(key);
    }
  }
  if (to_run != nullptr) {
    Execute(to_run);
  }
  return ticket;
}

Result<std::vector<double>> InferenceBatcher::Wait(const Ticket& ticket) {
  MGARDP_CHECK(ticket.valid());
  const std::shared_ptr<BatchState>& batch = ticket.batch_;
  // Two-phase wait. While the batch is still forming, poll with yields:
  // each yield cedes the core to submitters who may fill the batch, and
  // after claim_after_yields of them this waiter claims the batch itself
  // (every runnable submitter had its chance). Once some thread has
  // claimed the batch there is nothing to poll for — this waiter parks on
  // the done flag (futex) and wakes exactly once, when the leader
  // publishes. Yielding through an execution instead would make the
  // scheduler bounce every waiter through a no-op poll per slice, burning
  // context switches comparable to the batch compute itself.
  std::size_t yields = 0;
  while (!batch->done.load(std::memory_order_acquire)) {
    if (batch->claimed.load(std::memory_order_relaxed)) {
      // Executing elsewhere: sleep until the leader notifies. wait()
      // returns immediately if done flipped between the loads.
      batch->done.wait(false, std::memory_order_acquire);
      continue;
    }
    // Forming: bounded yield-poll, then claim. The lock is only taken to
    // claim the batch.
    if (yields < options_.claim_after_yields &&
        clock_->Now().time_since_epoch().count() <
            batch->flush_at_ticks.load(std::memory_order_relaxed)) {
      ++yields;
      std::this_thread::yield();
      continue;
    }
    bool run = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch->claimed.load(std::memory_order_relaxed)) {
        // Either the delay expired or this waiter has ceded the core
        // claim_after_yields times — every runnable submitter had its
        // chance to join, so more waiting only buys latency. This waiter
        // becomes the leader, claims the batch, and runs it. An unclaimed
        // batch is by construction still the forming batch for its key.
        batch->claimed.store(true, std::memory_order_relaxed);
        forming_.erase(batch->key);
        run = true;
      }
    }
    if (run) {
      Execute(batch);
      break;
    }
    std::this_thread::yield();
  }
  // done was published with release ordering after the results were
  // written; the acquire loads above make the lock-free reads here safe.
  if (!batch->status.ok()) {
    return batch->status;
  }
  std::vector<double> out(batch->out.cols());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = batch->out(ticket.row_, c);
  }
  return out;
}

Result<std::vector<double>> InferenceBatcher::Submit(const std::string& key,
                                                     std::vector<double> row,
                                                     Kernel kernel) {
  return Wait(SubmitAsync(key, std::move(row), std::move(kernel)));
}

void InferenceBatcher::Execute(const std::shared_ptr<BatchState>& batch) {
  MGARDP_TRACE_SPAN("dnn/batch_infer", "dnn");
  const double delay_ms =
      std::chrono::duration<double, std::milli>(clock_->Now() -
                                                batch->created)
          .count();
  const bool link_joiners = !batch->joiners.empty();
  const auto kernel_start = link_joiners
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
  Matrix in(batch->num_rows, batch->width, std::move(batch->rows));
  Result<Matrix> result = batch->kernel(in);
  if (link_joiners) {
    // Stamp the shared kernel call into every joiner's flight record, each
    // carrying the trace ids of all peers as span links.
    const auto kernel_end = std::chrono::steady_clock::now();
    obs::Tracer& tracer = obs::GlobalTracer();
    obs::TraceEvent ev;
    ev.name = "dnn/batch_infer";
    ev.category = "dnn";
    ev.ts_us = tracer.ToMicros(kernel_start);
    ev.dur_us = std::chrono::duration<double, std::micro>(kernel_end -
                                                          kernel_start)
                    .count();
    ev.tid = obs::CurrentThreadId();
    std::vector<std::uint64_t> links;
    links.reserve(batch->joiners.size());
    for (const auto& joiner : batch->joiners) {
      links.push_back(joiner->trace_id());
    }
    for (const auto& joiner : batch->joiners) {
      joiner->AppendBatchSpan(ev, links, batch->num_rows);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok() && result.value().rows() != batch->num_rows) {
      batch->status = Status::Internal(
          "inference batcher: kernel for key '" + batch->key + "' returned " +
          std::to_string(result.value().rows()) + " rows for " +
          std::to_string(batch->num_rows) + " inputs");
    } else if (result.ok()) {
      batch->out = std::move(result).value();
    } else {
      batch->status = result.status();
    }
    batch->done.store(true, std::memory_order_release);
    ++stats_.batches;
    stats_.max_batch_rows =
        std::max<std::uint64_t>(stats_.max_batch_rows, batch->num_rows);
  }
  batch->done.notify_all();  // wake waiters parked on the done futex
  if (options_.observer) {
    options_.observer(batch->num_rows, delay_ms);
  }
}

void InferenceBatcher::Drain(const std::string& prefix) {
  std::vector<std::shared_ptr<BatchState>> claimed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = forming_.begin(); it != forming_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        it->second->claimed.store(true, std::memory_order_relaxed);
        claimed.push_back(it->second);
        it = forming_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<BatchState>& batch : claimed) {
    Execute(batch);
  }
}

std::size_t InferenceBatcher::pending_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, batch] : forming_) {
    n += batch->num_rows;
  }
  return n;
}

InferenceBatcher::Stats InferenceBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dnn
}  // namespace mgardp
