// Neural-network layers with explicit forward/backward passes.
//
// No autograd: each layer caches what it needs during Forward and produces
// input gradients plus parameter gradients during Backward. This is all the
// paper's models require (plain MLPs) and keeps the stack dependency-free.

#ifndef MGARDP_DNN_LAYERS_H_
#define MGARDP_DNN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "dnn/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace mgardp {
namespace dnn {

class Layer {
 public:
  virtual ~Layer() = default;

  // x is (batch, in_features); returns (batch, out_features). The layer may
  // cache activations for the subsequent Backward.
  virtual Matrix Forward(const Matrix& x) = 0;

  // Inference-only forward: no activation caching, no training behaviour
  // (dropout is identity), no state writes at all — safe to call
  // concurrently on a shared const model, which Forward is not (its
  // activation caches are written on every call).
  virtual Matrix Infer(const Matrix& x) const = 0;

  // grad_out is dLoss/dOutput; returns dLoss/dInput and accumulates
  // parameter gradients (callers zero them via ZeroGrad between steps).
  virtual Matrix Backward(const Matrix& grad_out) = 0;

  // Trainable parameters and their gradient buffers (parallel vectors).
  virtual std::vector<Matrix*> Params() { return {}; }
  virtual std::vector<Matrix*> Grads() { return {}; }

  void ZeroGrad() {
    for (Matrix* g : Grads()) {
      g->Fill(0.0);
    }
  }

  // Layer type tag for serialization.
  virtual std::string Kind() const = 0;

  // Toggles training-time behaviour (dropout etc.); default is a no-op.
  virtual void SetTraining(bool) {}
};

// Fully connected layer: y = x W + b, W is (in, out), b is (1, out).
class Linear : public Layer {
 public:
  // He-uniform initialization scaled for the given fan-in.
  Linear(std::size_t in_features, std::size_t out_features, Rng* rng);
  // Uninitialized (weights zero), for deserialization.
  Linear(std::size_t in_features, std::size_t out_features);

  Matrix Forward(const Matrix& x) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::vector<Matrix*> Params() override { return {&weight_, &bias_}; }
  std::vector<Matrix*> Grads() override { return {&grad_weight_, &grad_bias_}; }
  std::string Kind() const override { return "linear"; }

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }
  Matrix& weight() { return weight_; }
  Matrix& bias() { return bias_; }

 private:
  Matrix weight_, bias_;
  Matrix grad_weight_, grad_bias_;
  Matrix cached_input_;
};

// Leaky rectified linear unit; slope 0 gives plain ReLU.
class LeakyRelu : public Layer {
 public:
  explicit LeakyRelu(double negative_slope = 0.01)
      : slope_(negative_slope) {}

  Matrix Forward(const Matrix& x) override;
  Matrix Infer(const Matrix& x) const override;
  Matrix Backward(const Matrix& grad_out) override;
  std::string Kind() const override { return "leaky_relu"; }

  double slope() const { return slope_; }

 private:
  double slope_;
  Matrix cached_input_;
};

// Inverted dropout: during training each activation is zeroed with
// probability `rate` and survivors are scaled by 1/(1-rate), so evaluation
// needs no rescaling. A no-op outside training mode.
class Dropout : public Layer {
 public:
  // `rate` in [0, 1); `rng` must outlive the layer.
  Dropout(double rate, Rng* rng);

  Matrix Forward(const Matrix& x) override;
  // Identity: inference is deterministic regardless of the rate.
  Matrix Infer(const Matrix& x) const override { return x; }
  Matrix Backward(const Matrix& grad_out) override;
  std::string Kind() const override { return "dropout"; }
  void SetTraining(bool training) override { training_ = training; }

  double rate() const { return rate_; }
  bool training() const { return training_; }

 private:
  double rate_;
  Rng* rng_;
  bool training_ = false;
  Matrix mask_;  // per-element keep/scale factors from the last Forward
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_LAYERS_H_
