#include "dnn/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace mgardp {
namespace dnn {

void Sgd::Step(const std::vector<Matrix*>& params,
               const std::vector<Matrix*>& grads) {
  MGARDP_CHECK_EQ(params.size(), grads.size());
  for (std::size_t s = 0; s < params.size(); ++s) {
    auto& p = params[s]->vector();
    const auto& g = grads[s]->vector();
    MGARDP_CHECK_EQ(p.size(), g.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] -= lr_ * g[i];
    }
  }
}

void Adam::Step(const std::vector<Matrix*>& params,
                const std::vector<Matrix*>& grads) {
  MGARDP_CHECK_EQ(params.size(), grads.size());
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t s = 0; s < params.size(); ++s) {
      m_[s].assign(params[s]->size(), 0.0);
      v_[s].assign(params[s]->size(), 0.0);
    }
  }
  MGARDP_CHECK_EQ(m_.size(), params.size());
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (std::size_t s = 0; s < params.size(); ++s) {
    auto& p = params[s]->vector();
    const auto& g = grads[s]->vector();
    MGARDP_CHECK_EQ(p.size(), g.size());
    MGARDP_CHECK_EQ(p.size(), m_[s].size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      m_[s][i] = beta1_ * m_[s][i] + (1.0 - beta1_) * g[i];
      v_[s][i] = beta2_ * v_[s][i] + (1.0 - beta2_) * g[i] * g[i];
      const double mhat = m_[s][i] / bc1;
      const double vhat = v_[s][i] / bc2;
      p[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * p[i]);
    }
  }
}

}  // namespace dnn
}  // namespace mgardp
