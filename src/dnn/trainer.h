// Minibatch training loop with the paper's protocol: shuffled minibatches,
// Adam, fixed epoch count, deterministic seeding.

#ifndef MGARDP_DNN_TRAINER_H_
#define MGARDP_DNN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "dnn/loss.h"
#include "dnn/mlp.h"
#include "util/status.h"

namespace mgardp {
namespace dnn {

struct TrainConfig {
  int epochs = 300;          // paper: 300
  std::size_t batch_size = 256;
  double learning_rate = 5e-5;
  // Decoupled (AdamW-style) weight decay; 0 disables. Useful when the
  // record count is far below the paper's (regularizes the per-level MLPs).
  double weight_decay = 0.0;
  std::string loss = "huber";  // "huber" | "mse" | "mae"
  std::string optimizer = "adam";  // "adam" | "sgd"
  std::uint64_t seed = 1;
  // Optional progress report every N epochs (0 = silent). Lines go to
  // `log_fn` when set, else to stderr — background trainers pass their own
  // sink so progress never interleaves with serve-bench output.
  int log_every = 0;
  std::function<void(const std::string&)> log_fn;
  // Early stopping: hold out this fraction of rows (shuffled, seeded) as a
  // validation set (0 disables). Training stops once the validation loss
  // has not improved for `patience` epochs, and the best-validation weights
  // are restored.
  double validation_fraction = 0.0;
  int patience = 20;
};

struct TrainReport {
  std::vector<double> epoch_loss;  // mean training loss per epoch
  std::vector<double> val_loss;    // per epoch, when validation is enabled
  double final_loss = 0.0;
  // Epoch whose weights were kept (equals epochs - 1 without early stop).
  int best_epoch = 0;
  bool early_stopped = false;
};

// Trains `mlp` on (features, targets) rows. Features/targets must have the
// same row count and match the network dimensions.
Result<TrainReport> Train(Mlp* mlp, const Matrix& features,
                          const Matrix& targets, const TrainConfig& config);

// Mean loss of `mlp` on a dataset (no gradient updates).
double Evaluate(Mlp* mlp, const Matrix& features, const Matrix& targets,
                const Loss& loss);

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_TRAINER_H_
