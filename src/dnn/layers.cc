#include "dnn/layers.h"

#include <cmath>

namespace mgardp {
namespace dnn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng* rng)
    : Linear(in_features, out_features) {
  MGARDP_CHECK(rng != nullptr);
  // He-uniform: U(-limit, limit) with limit = sqrt(6 / fan_in).
  const double limit = std::sqrt(6.0 / static_cast<double>(in_features));
  for (double& w : weight_.vector()) {
    w = rng->Uniform(-limit, limit);
  }
}

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : weight_(in_features, out_features),
      bias_(1, out_features),
      grad_weight_(in_features, out_features),
      grad_bias_(1, out_features) {}

Matrix Linear::Forward(const Matrix& x) {
  MGARDP_CHECK_EQ(x.cols(), weight_.rows());
  cached_input_ = x;
  Matrix out = x.MatMul(weight_);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) += bias_(0, c);
    }
  }
  return out;
}

Matrix Linear::Infer(const Matrix& x) const {
  MGARDP_CHECK_EQ(x.cols(), weight_.rows());
  // Fused matmul+bias matches Forward's two-pass arithmetic bit for bit;
  // no cached_input_ write, so concurrent callers never race.
  return x.MatMulAddBias(weight_, bias_);
}

Matrix Linear::Backward(const Matrix& grad_out) {
  MGARDP_CHECK_EQ(grad_out.cols(), weight_.cols());
  MGARDP_CHECK_EQ(grad_out.rows(), cached_input_.rows());
  // dW += x^T g ; db += sum over batch of g ; dx = g W^T.
  Matrix gw = cached_input_.TransposedMatMul(grad_out);
  for (std::size_t i = 0; i < gw.size(); ++i) {
    grad_weight_.vector()[i] += gw.vector()[i];
  }
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      grad_bias_(0, c) += grad_out(r, c);
    }
  }
  return grad_out.MatMulTransposed(weight_);
}

Matrix LeakyRelu::Forward(const Matrix& x) {
  cached_input_ = x;
  Matrix out = x;
  for (double& v : out.vector()) {
    if (v < 0.0) {
      v *= slope_;
    }
  }
  return out;
}

Matrix LeakyRelu::Infer(const Matrix& x) const {
  Matrix out = x;
  for (double& v : out.vector()) {
    if (v < 0.0) {
      v *= slope_;
    }
  }
  return out;
}

Matrix LeakyRelu::Backward(const Matrix& grad_out) {
  MGARDP_CHECK_EQ(grad_out.rows(), cached_input_.rows());
  MGARDP_CHECK_EQ(grad_out.cols(), cached_input_.cols());
  Matrix grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_input_.vector()[i] < 0.0) {
      grad_in.vector()[i] *= slope_;
    }
  }
  return grad_in;
}

Dropout::Dropout(double rate, Rng* rng) : rate_(rate), rng_(rng) {
  MGARDP_CHECK(rate >= 0.0 && rate < 1.0) << "dropout rate out of range";
  MGARDP_CHECK(rng != nullptr);
}

Matrix Dropout::Forward(const Matrix& x) {
  if (!training_ || rate_ == 0.0) {
    mask_ = Matrix();
    return x;
  }
  const double scale = 1.0 / (1.0 - rate_);
  mask_ = Matrix(x.rows(), x.cols());
  Matrix out = x;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double keep = rng_->NextDouble() >= rate_ ? scale : 0.0;
    mask_.vector()[i] = keep;
    out.vector()[i] *= keep;
  }
  return out;
}

Matrix Dropout::Backward(const Matrix& grad_out) {
  if (mask_.empty()) {
    return grad_out;
  }
  MGARDP_CHECK_EQ(grad_out.size(), mask_.size());
  Matrix grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    grad_in.vector()[i] *= mask_.vector()[i];
  }
  return grad_in;
}

}  // namespace dnn
}  // namespace mgardp
