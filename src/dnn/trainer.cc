#include "dnn/trainer.h"

#include <algorithm>
#include <iostream>
#include <limits>
#include <memory>
#include <numeric>
#include <sstream>

#include "dnn/optimizer.h"
#include "obs/tracer.h"
#include "util/rng.h"

namespace mgardp {
namespace dnn {

Result<TrainReport> Train(Mlp* mlp, const Matrix& features,
                          const Matrix& targets, const TrainConfig& config) {
  MGARDP_TRACE_SPAN("dnn/train", "dnn");
  if (mlp == nullptr || !mlp->initialized()) {
    return Status::Invalid("trainer: network not initialized");
  }
  if (features.rows() != targets.rows()) {
    return Status::Invalid("trainer: feature/target row mismatch");
  }
  if (features.rows() == 0) {
    return Status::Invalid("trainer: empty dataset");
  }
  if (features.cols() != mlp->config().input_dim ||
      targets.cols() != mlp->config().output_dim) {
    return Status::Invalid("trainer: dataset does not match network shape");
  }
  if (config.epochs <= 0 || config.batch_size == 0) {
    return Status::Invalid("trainer: bad epochs/batch_size");
  }

  std::unique_ptr<Loss> loss = MakeLoss(config.loss);
  std::unique_ptr<Optimizer> opt;
  if (config.optimizer == "adam") {
    opt = std::make_unique<Adam>(config.learning_rate, config.weight_decay);
  } else if (config.optimizer == "sgd") {
    opt = std::make_unique<Sgd>(config.learning_rate);
  } else {
    return Status::Invalid("trainer: unknown optimizer " + config.optimizer);
  }

  if (config.validation_fraction < 0.0 || config.validation_fraction >= 1.0) {
    return Status::Invalid("trainer: validation_fraction out of range");
  }

  Rng rng(config.seed);
  const std::size_t total = features.rows();
  std::vector<std::size_t> all(total);
  std::iota(all.begin(), all.end(), 0);
  // Shuffle once to draw a validation split, then keep shuffling the
  // training part each epoch.
  for (std::size_t i = total - 1; i > 0; --i) {
    std::swap(all[i], all[rng.NextBounded(i + 1)]);
  }
  std::size_t n_val = static_cast<std::size_t>(
      config.validation_fraction * static_cast<double>(total));
  if (config.validation_fraction > 0.0 && n_val == 0) {
    n_val = 1;
  }
  if (n_val >= total) {
    return Status::Invalid("trainer: validation split leaves no train rows");
  }
  std::vector<std::size_t> val(all.end() - n_val, all.end());
  std::vector<std::size_t> order(all.begin(), all.end() - n_val);
  const std::size_t n = order.size();

  Matrix val_x, val_y;
  if (n_val > 0) {
    val_x = features.GatherRows(val);
    val_y = targets.GatherRows(val);
  }

  TrainReport report;
  report.epoch_loss.reserve(config.epochs);
  const auto params = mlp->Params();
  const auto grads = mlp->Grads();

  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;
  std::vector<std::vector<double>> best_params;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic RNG.
    for (std::size_t i = n - 1; i > 0; --i) {
      std::swap(order[i], order[rng.NextBounded(i + 1)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    mlp->SetTraining(true);
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      std::vector<std::size_t> batch(order.begin() + start,
                                     order.begin() + end);
      Matrix x = features.GatherRows(batch);
      Matrix y = targets.GatherRows(batch);
      Matrix pred = mlp->Forward(x);
      epoch_loss += loss->Value(pred, y);
      mlp->ZeroGrad();
      mlp->Backward(loss->Grad(pred, y));
      opt->Step(params, grads);
      ++batches;
    }
    mlp->SetTraining(false);
    epoch_loss /= static_cast<double>(batches);
    report.epoch_loss.push_back(epoch_loss);

    if (n_val > 0) {
      const double vl = loss->Value(mlp->Forward(val_x), val_y);
      report.val_loss.push_back(vl);
      if (vl < best_val) {
        best_val = vl;
        report.best_epoch = epoch;
        since_best = 0;
        best_params.clear();
        for (Matrix* p : params) {
          best_params.push_back(p->vector());
        }
      } else if (++since_best >= config.patience) {
        report.early_stopped = true;
        break;
      }
    } else {
      report.best_epoch = epoch;
    }

    if (config.log_every > 0 && (epoch + 1) % config.log_every == 0) {
      std::ostringstream line;
      line << "epoch " << (epoch + 1) << "/" << config.epochs
           << " loss=" << epoch_loss;
      if (config.log_fn) {
        config.log_fn(line.str());
      } else {
        std::cerr << line.str() << std::endl;
      }
    }
  }

  if (!best_params.empty()) {
    for (std::size_t s = 0; s < params.size(); ++s) {
      params[s]->vector() = best_params[s];
    }
  }
  report.final_loss = report.epoch_loss.back();
  return report;
}

double Evaluate(Mlp* mlp, const Matrix& features, const Matrix& targets,
                const Loss& loss) {
  Matrix pred = mlp->Forward(features);
  return loss.Value(pred, targets);
}

}  // namespace dnn
}  // namespace mgardp
