// Multi-layer perceptron container: the network shape the paper uses for
// both D-MGARD (six hidden layers, leaky ReLU -- Fig. 6c) and the E-MGARD
// encoder (funnel 2048/512/128/8, ReLU -- Fig. 8, scaled to our input
// sizes).

#ifndef MGARDP_DNN_MLP_H_
#define MGARDP_DNN_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "dnn/layers.h"
#include "util/io.h"
#include "util/rng.h"
#include "util/status.h"

namespace mgardp {
namespace dnn {

struct MlpConfig {
  std::size_t input_dim = 0;
  std::vector<std::size_t> hidden_dims;
  std::size_t output_dim = 1;
  // Negative-side slope for the activations; 0 = plain ReLU, 0.01 = the
  // leaky ReLU of the paper.
  double leaky_slope = 0.01;
  // Dropout rate applied after every hidden activation (0 disables). Only
  // active while the trainer runs; inference is deterministic.
  double dropout = 0.0;

  // The D-MGARD per-level network: six hidden layers of `width`.
  static MlpConfig DMgardDefault(std::size_t input_dim, std::size_t width);
  // The E-MGARD encoder+head: funnel hidden dims ending in the latent size,
  // then a scalar head.
  static MlpConfig EMgardDefault(std::size_t input_dim);
};

class Mlp {
 public:
  Mlp() = default;
  // Builds and initializes the network; `rng` drives weight init.
  Mlp(const MlpConfig& config, Rng* rng);

  bool initialized() const { return !layers_.empty(); }
  const MlpConfig& config() const { return config_; }

  Matrix Forward(const Matrix& x);
  // Inference-only forward over any number of rows: no activation caches,
  // no dropout, no writes — bit-identical to an eval-mode Forward and safe
  // to call concurrently on a shared const network. Batching rows through
  // one Predict is bit-identical to row-by-row calls (every per-element
  // accumulation order is row-local).
  Matrix Predict(const Matrix& x) const;
  // Switches training-time behaviour (dropout) on or off for all layers.
  void SetTraining(bool training);
  // Backpropagates dLoss/dOutput; parameter gradients accumulate in layers.
  void Backward(const Matrix& grad_out);
  void ZeroGrad();

  std::vector<Matrix*> Params();
  std::vector<Matrix*> Grads();
  std::size_t NumParameters();

  // Weight + architecture round-trip.
  void Serialize(BinaryWriter* w) const;
  Status Deserialize(BinaryReader* r);

 private:
  void Build(Rng* rng);

  MlpConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
  // Drives dropout masks; owned here so layers can hold a stable pointer.
  std::unique_ptr<Rng> dropout_rng_;
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_MLP_H_
