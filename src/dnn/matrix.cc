#include "dnn/matrix.h"

#include "util/parallel.h"

namespace mgardp {
namespace dnn {

namespace {

// Column-block width for the inner kernels: 64 doubles = 512 bytes, a few
// cache lines of the output row that stay resident across the k loop.
constexpr std::size_t kColBlock = 64;

// Output rows are parallelized only when the multiply has enough flops to
// amortize a pool dispatch.
constexpr std::size_t kMinParallelFlops = 64 * 1024;

std::size_t RowGrain(std::size_t flops_per_row) {
  return std::max<std::size_t>(
      1, kMinParallelFlops / std::max<std::size_t>(flops_per_row, 1));
}

}  // namespace

Matrix Matrix::MatMul(const Matrix& other) const {
  MGARDP_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;
  // Blocked i-k-j: the j block of the output row stays in cache across the
  // whole k loop. Per output element the k-accumulation order is unchanged,
  // so results are identical to the naive kernel and to every thread count.
  ParallelFor(0, rows_, RowGrain(cols_ * n),
              [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t i = r_lo; i < r_hi; ++i) {
      const double* a_row = data_.data() + i * cols_;
      double* o_row = out.data() + i * n;
      for (std::size_t jb = 0; jb < n; jb += kColBlock) {
        const std::size_t je = std::min(jb + kColBlock, n);
        for (std::size_t k = 0; k < cols_; ++k) {
          const double a = a_row[k];
          const double* b_row = other.data() + k * n;
          for (std::size_t j = jb; j < je; ++j) {
            o_row[j] += a * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

Matrix Matrix::MatMulAddBias(const Matrix& other, const Matrix& bias) const {
  MGARDP_CHECK_EQ(cols_, other.rows_);
  MGARDP_CHECK_EQ(bias.rows(), 1u);
  MGARDP_CHECK_EQ(bias.cols(), other.cols_);
  Matrix out(rows_, other.cols_);
  const std::size_t n = other.cols_;
  // Same blocked i-k-j kernel as MatMul; the bias joins each j block only
  // after its k loop finishes, preserving MatMul's accumulation order
  // exactly (sum of products first, bias last — as the two-pass form).
  ParallelFor(0, rows_, RowGrain(cols_ * n),
              [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t i = r_lo; i < r_hi; ++i) {
      const double* a_row = data_.data() + i * cols_;
      double* o_row = out.data() + i * n;
      for (std::size_t jb = 0; jb < n; jb += kColBlock) {
        const std::size_t je = std::min(jb + kColBlock, n);
        for (std::size_t k = 0; k < cols_; ++k) {
          const double a = a_row[k];
          const double* b_row = other.data() + k * n;
          for (std::size_t j = jb; j < je; ++j) {
            o_row[j] += a * b_row[j];
          }
        }
        const double* b = bias.data();
        for (std::size_t j = jb; j < je; ++j) {
          o_row[j] += b[j];
        }
      }
    }
  });
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  MGARDP_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  const std::size_t n = other.cols_;
  // Iterate output rows i (columns of this) so rows parallelize without
  // racing on the shared output; per element the k order matches the
  // former k-outer kernel exactly.
  ParallelFor(0, cols_, RowGrain(rows_ * n),
              [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t i = r_lo; i < r_hi; ++i) {
      double* o_row = out.data() + i * n;
      for (std::size_t jb = 0; jb < n; jb += kColBlock) {
        const std::size_t je = std::min(jb + kColBlock, n);
        for (std::size_t k = 0; k < rows_; ++k) {
          const double a = data_[k * cols_ + i];
          const double* b_row = other.data() + k * n;
          for (std::size_t j = jb; j < je; ++j) {
            o_row[j] += a * b_row[j];
          }
        }
      }
    }
  });
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  MGARDP_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  const std::size_t n = other.rows_;
  ParallelFor(0, rows_, RowGrain(cols_ * n),
              [&](std::size_t r_lo, std::size_t r_hi) {
    for (std::size_t i = r_lo; i < r_hi; ++i) {
      const double* a_row = data_.data() + i * cols_;
      double* o_row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double* b_row = other.data() + j * cols_;
        double acc = 0.0;
        for (std::size_t k = 0; k < cols_; ++k) {
          acc += a_row[k] * b_row[k];
        }
        o_row[j] = acc;
      }
    }
  });
  return out;
}

Matrix Matrix::GatherRows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t r = 0; r < indices.size(); ++r) {
    MGARDP_CHECK_LT(indices[r], rows_);
    const double* src = data_.data() + indices[r] * cols_;
    double* dst = out.data() + r * cols_;
    std::copy(src, src + cols_, dst);
  }
  return out;
}

}  // namespace dnn
}  // namespace mgardp
