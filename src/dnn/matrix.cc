#include "dnn/matrix.h"

namespace mgardp {
namespace dnn {

Matrix Matrix::MatMul(const Matrix& other) const {
  MGARDP_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both inputs.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* o_row = out.data() + i * other.cols_;
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = a_row[k];
      if (a == 0.0) {
        continue;
      }
      const double* b_row = other.data() + k * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::TransposedMatMul(const Matrix& other) const {
  MGARDP_CHECK_EQ(rows_, other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a_row = data_.data() + k * cols_;
    const double* b_row = other.data() + k * other.cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = a_row[i];
      if (a == 0.0) {
        continue;
      }
      double* o_row = out.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        o_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::MatMulTransposed(const Matrix& other) const {
  MGARDP_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = data_.data() + i * cols_;
    double* o_row = out.data() + i * other.rows_;
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* b_row = other.data() + j * other.cols_;
      double acc = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) {
        acc += a_row[k] * b_row[k];
      }
      o_row[j] = acc;
    }
  }
  return out;
}

Matrix Matrix::GatherRows(const std::vector<std::size_t>& indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t r = 0; r < indices.size(); ++r) {
    MGARDP_CHECK_LT(indices[r], rows_);
    const double* src = data_.data() + indices[r] * cols_;
    double* dst = out.data() + r * cols_;
    std::copy(src, src + cols_, dst);
  }
  return out;
}

}  // namespace dnn
}  // namespace mgardp
