// First-order optimizers. The paper trains with small learning rates
// (5e-5 / 1e-5); Adam is the default, plain SGD kept for comparison.

#ifndef MGARDP_DNN_OPTIMIZER_H_
#define MGARDP_DNN_OPTIMIZER_H_

#include <vector>

#include "dnn/matrix.h"

namespace mgardp {
namespace dnn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update step: params[i] -= f(grads[i]). The two vectors are
  // parallel and must keep the same shapes across calls (state is per-slot).
  virtual void Step(const std::vector<Matrix*>& params,
                    const std::vector<Matrix*>& grads) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;

 private:
  double lr_;
};

// Adam with optional decoupled weight decay (AdamW): the decay is applied
// directly to the parameters, not through the moment estimates.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double weight_decay = 0.0, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}
  void Step(const std::vector<Matrix*>& params,
            const std::vector<Matrix*>& grads) override;

 private:
  double lr_, weight_decay_, beta1_, beta2_, eps_;
  long step_ = 0;
  std::vector<std::vector<double>> m_, v_;  // per-slot moments
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_OPTIMIZER_H_
