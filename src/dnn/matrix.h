// Dense row-major matrix of doubles -- the only tensor type the DNN stack
// needs. Batches are rows, features are columns.

#ifndef MGARDP_DNN_MATRIX_H_
#define MGARDP_DNN_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace mgardp {
namespace dnn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    MGARDP_CHECK_EQ(rows_ * cols_, data_.size());
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    MGARDP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    MGARDP_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& vector() { return data_; }
  const std::vector<double>& vector() const { return data_; }

  // this (m x k) times other (k x n) -> (m x n).
  Matrix MatMul(const Matrix& other) const;
  // MatMul(other) with `bias` (1 x n) added to every output row. The bias
  // lands after each element's full k-accumulation, so the result is
  // bit-identical to MatMul followed by a separate bias loop — this is the
  // inference fast path (one pass over the output instead of two).
  Matrix MatMulAddBias(const Matrix& other, const Matrix& bias) const;
  // this^T (k x m -> m x k view) times other (k x n) -> (m x n).
  Matrix TransposedMatMul(const Matrix& other) const;
  // this (m x k) times other^T (n x k -> k x n view) -> (m x n).
  Matrix MatMulTransposed(const Matrix& other) const;

  // Returns the subset of rows given by `indices`.
  Matrix GatherRows(const std::vector<std::size_t>& indices) const;

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace dnn
}  // namespace mgardp

#endif  // MGARDP_DNN_MATRIX_H_
