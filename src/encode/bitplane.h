// Bit-plane encoding of coefficient levels.
//
// Each level's coefficients are scaled by a per-level exponent into fixed
// point, converted to nega-binary, and sliced into `num_planes` bit-planes
// ordered most-significant first. Retrieving a prefix of planes yields a
// coarse version of every coefficient; the error matrix records exactly how
// coarse (max-abs and mean-squared error per prefix length), which is the
// Err[l][b] input to the error estimators (Table I of the paper).

#ifndef MGARDP_ENCODE_BITPLANE_H_
#define MGARDP_ENCODE_BITPLANE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgardp {

// The bit-planes of one coefficient level.
struct BitplaneSet {
  int num_planes = 0;   // B: total planes encoded
  int exponent = 0;     // e: max |coefficient| <= 2^e
  std::uint64_t count = 0;  // number of coefficients
  // planes[p] is the packed bitstream of plane p (p = 0 is the most
  // significant); each holds ceil(count / 8) bytes.
  std::vector<std::string> planes;

  // Raw (pre-lossless) size in bytes of one plane.
  std::size_t PlaneBytes() const { return (count + 7) / 8; }
};

// Per-prefix reconstruction error of one level: entry b describes the error
// when only the first b planes are kept (b = 0 -> nothing retrieved,
// b = num_planes -> quantization floor).
struct LevelErrorStats {
  std::vector<double> max_abs;  // size num_planes + 1
  std::vector<double> mse;      // size num_planes + 1
};

class BitplaneEncoder {
 public:
  // `num_planes` in [2, 60]. 32 matches the paper's per-level plane count.
  explicit BitplaneEncoder(int num_planes = 32);

  int num_planes() const { return num_planes_; }

  // Encodes `coefs` into bit-planes; if `stats` is non-null also collects
  // the error matrix row for this level.
  Result<BitplaneSet> Encode(const std::vector<double>& coefs,
                             LevelErrorStats* stats) const;

  // Reconstructs coefficients from the first `prefix_planes` planes
  // (0 <= prefix_planes <= set.num_planes). Missing planes read as zero
  // digits.
  Result<std::vector<double>> Decode(const BitplaneSet& set,
                                     int prefix_planes) const;

 private:
  int num_planes_;
};

// Serialization of a BitplaneSet (including plane payloads).
void SerializeBitplaneSet(const BitplaneSet& set, std::string* out);
Result<BitplaneSet> DeserializeBitplaneSet(const std::string& in);

}  // namespace mgardp

#endif  // MGARDP_ENCODE_BITPLANE_H_
