// Bit-plane encoding of coefficient levels.
//
// Each level's coefficients are scaled by a per-level exponent into fixed
// point, converted to nega-binary, and sliced into `num_planes` bit-planes
// ordered most-significant first. Retrieving a prefix of planes yields a
// coarse version of every coefficient; the error matrix records exactly how
// coarse (max-abs and mean-squared error per prefix length), which is the
// Err[l][b] input to the error estimators (Table I of the paper).
//
// The hot slicing loops are word-parallel: blocks of 64 nega-binary
// coefficient words are transposed into plane-major machine words with a
// 64x64 SWAR bit-matrix transpose (shift/mask butterflies), so every plane
// is emitted/consumed 64 coefficients per instruction instead of one bit at
// a time. The original scalar kernels survive behind `internal::` as the
// reference implementation the cross-check tests compare against; both
// paths produce bit-identical plane payloads, error matrices, and decoded
// coefficients for any thread count.

#ifndef MGARDP_ENCODE_BITPLANE_H_
#define MGARDP_ENCODE_BITPLANE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgardp {

// The bit-planes of one coefficient level.
struct BitplaneSet {
  int num_planes = 0;   // B: total planes encoded
  int exponent = 0;     // e: max |coefficient| <= 2^e
  std::uint64_t count = 0;  // number of coefficients
  // planes[p] is the packed bitstream of plane p (p = 0 is the most
  // significant); each holds ceil(count / 8) bytes. Bit (i & 7) of byte
  // (i >> 3) is coefficient i's digit, i.e. a plane is the little-endian
  // byte image of 64-bit words whose bit i belongs to coefficient i.
  std::vector<std::string> planes;

  // Raw (pre-lossless) size in bytes of one plane.
  std::size_t PlaneBytes() const { return (count + 7) / 8; }
};

// Per-prefix reconstruction error of one level: entry b describes the error
// when only the first b planes are kept (b = 0 -> nothing retrieved,
// b = num_planes -> quantization floor).
struct LevelErrorStats {
  std::vector<double> max_abs;  // size num_planes + 1
  std::vector<double> mse;      // size num_planes + 1
};

class BitplaneEncoder {
 public:
  // `num_planes` in [2, 60]. 32 matches the paper's per-level plane count.
  explicit BitplaneEncoder(int num_planes = 32);

  int num_planes() const { return num_planes_; }

  // Encodes `coefs` into bit-planes; if `stats` is non-null also collects
  // the error matrix row for this level (folded into the same transposed
  // pass over the nega-binary words).
  Result<BitplaneSet> Encode(const std::vector<double>& coefs,
                             LevelErrorStats* stats) const;

  // Reconstructs coefficients from the first `prefix_planes` planes
  // (0 <= prefix_planes <= set.num_planes). Missing planes read as zero
  // digits. Validates the set's shape (num_planes range, plane count, and
  // every present plane's payload size) before touching any plane byte, so
  // corrupt or hostile sets fail cleanly instead of over-reading.
  Result<std::vector<double>> Decode(const BitplaneSet& set,
                                     int prefix_planes) const;

 private:
  int num_planes_;
};

// Serialization of a BitplaneSet (including plane payloads).
void SerializeBitplaneSet(const BitplaneSet& set, std::string* out);
// Rejects structurally invalid input: num_planes outside [2, 60], more
// planes than num_planes, or any plane payload whose size disagrees with
// `count`. Guarantees the returned set passes Decode's validation shape
// checks for any in-range prefix.
Result<BitplaneSet> DeserializeBitplaneSet(const std::string& in);

namespace internal {

// In-place transpose of a 64x64 bit matrix: bit d of word r moves to bit r
// of word d. Six rounds of shift/mask butterflies; an involution.
inline void Transpose64x64(std::uint64_t m[64]) {
  std::uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((m[k] >> j) ^ m[k + j]) & mask;
      m[k + j] ^= t;
      m[k] ^= t << j;
    }
  }
}

// Structural validation shared by Decode and the scalar reference: checks
// num_planes, prefix range, plane count, and every present plane's size.
Status ValidateBitplaneSet(const BitplaneSet& set, int prefix_planes);

// Reference scalar kernels (the pre-word-parallel implementation). Used by
// the cross-check tests and kept verbatim so any divergence in the fast
// path is attributable.
//
// Slices nega-binary words into plane payloads one bit at a time.
// `planes` must already hold num_planes strings of PlaneBytes() zero bytes.
void SlicePlanesScalar(const std::uint64_t* nb, std::size_t count,
                       int num_planes, std::vector<std::string>* planes);
// Full scalar encode: quantize + slice + optional error matrix.
Result<BitplaneSet> EncodeScalar(const std::vector<double>& coefs,
                                 int num_planes, LevelErrorStats* stats);
// Scalar decode, one plane bit per coefficient per iteration.
Result<std::vector<double>> DecodeScalar(const BitplaneSet& set,
                                         int prefix_planes);

}  // namespace internal

}  // namespace mgardp

#endif  // MGARDP_ENCODE_BITPLANE_H_
