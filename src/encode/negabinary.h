// Nega-binary (base -2) integer representation.
//
// MGARD encodes quantized coefficients in nega-binary so that truncating
// low-order bit-planes perturbs the value by a bounded, sign-free amount and
// no separate sign plane is needed. The classic branch-free conversion uses
// the alternating mask 0xAAAA...: nb = (n + M) ^ M, n = (nb ^ M) - M.

#ifndef MGARDP_ENCODE_NEGABINARY_H_
#define MGARDP_ENCODE_NEGABINARY_H_

#include <cstdint>

namespace mgardp {

inline constexpr std::uint64_t kNegabinaryMask = 0xAAAAAAAAAAAAAAAAULL;

// Returns the base(-2) digit string of n packed into a uint64 (digit j in
// bit j). Valid for any int64 whose nega-binary expansion fits 64 digits,
// which covers all |n| < 2^62.
inline std::uint64_t ToNegabinary(std::int64_t n) {
  const std::uint64_t u = static_cast<std::uint64_t>(n);
  return (u + kNegabinaryMask) ^ kNegabinaryMask;
}

// Inverse of ToNegabinary.
inline std::int64_t FromNegabinary(std::uint64_t nb) {
  return static_cast<std::int64_t>((nb ^ kNegabinaryMask) - kNegabinaryMask);
}

// Number of digits needed to represent nb (position of highest set digit
// plus one); 0 for nb == 0.
inline int NegabinaryDigits(std::uint64_t nb) {
  return nb == 0 ? 0 : 64 - __builtin_clzll(nb);
}

}  // namespace mgardp

#endif  // MGARDP_ENCODE_NEGABINARY_H_
