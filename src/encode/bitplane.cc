#include "encode/bitplane.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "encode/negabinary.h"
#include "util/io.h"
#include "util/logging.h"

namespace mgardp {

BitplaneEncoder::BitplaneEncoder(int num_planes) : num_planes_(num_planes) {
  MGARDP_CHECK(num_planes >= 2 && num_planes <= 60)
      << "num_planes out of range";
}

namespace {

// Exponent e with max_abs <= 2^e (e = 0 when the level is all zeros).
int LevelExponent(const std::vector<double>& coefs) {
  double max_abs = 0.0;
  for (double c : coefs) {
    max_abs = std::max(max_abs, std::fabs(c));
  }
  if (max_abs == 0.0) {
    return 0;
  }
  int e = static_cast<int>(std::ceil(std::log2(max_abs)));
  // Guard against log2 rounding putting max_abs just above 2^e.
  while (max_abs > std::ldexp(1.0, e)) {
    ++e;
  }
  return e;
}

}  // namespace

Result<BitplaneSet> BitplaneEncoder::Encode(const std::vector<double>& coefs,
                                            LevelErrorStats* stats) const {
  BitplaneSet set;
  set.num_planes = num_planes_;
  set.count = coefs.size();
  set.exponent = LevelExponent(coefs);
  const std::size_t plane_bytes = set.PlaneBytes();
  set.planes.assign(num_planes_, std::string(plane_bytes, '\0'));

  // Fixed-point scale: |q| <= 2^(B-2), which B nega-binary digits can
  // always represent (max positive value of B digits is (2^B - 1) / 3ish,
  // and 2^(B-2) is safely inside for both signs).
  const double scale = std::ldexp(1.0, num_planes_ - 2 - set.exponent);
  const double inv_scale = 1.0 / scale;

  std::vector<std::uint64_t> nb(coefs.size());
  for (std::size_t i = 0; i < coefs.size(); ++i) {
    const std::int64_t q = std::llround(coefs[i] * scale);
    nb[i] = ToNegabinary(q);
    if (NegabinaryDigits(nb[i]) > num_planes_) {
      std::ostringstream os;
      os << "coefficient " << coefs[i] << " overflows " << num_planes_
         << " nega-binary planes (exponent " << set.exponent << ")";
      return Status::Internal(os.str());
    }
  }

  // Slice digits into planes, MSB plane first.
  for (int p = 0; p < num_planes_; ++p) {
    const int digit = num_planes_ - 1 - p;
    std::string& plane = set.planes[p];
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if ((nb[i] >> digit) & 1u) {
        plane[i >> 3] |= static_cast<char>(1u << (i & 7));
      }
    }
  }

  if (stats != nullptr) {
    stats->max_abs.assign(num_planes_ + 1, 0.0);
    stats->mse.assign(num_planes_ + 1, 0.0);
    // Incrementally reconstruct per-coefficient prefixes: after adding plane
    // p the kept digits are the top (p + 1).
    std::vector<std::uint64_t> partial(nb.size(), 0);
    const double inv_n =
        coefs.empty() ? 0.0 : 1.0 / static_cast<double>(coefs.size());
    for (int b = 0; b <= num_planes_; ++b) {
      if (b > 0) {
        const int digit = num_planes_ - b;
        const std::uint64_t bit = std::uint64_t{1} << digit;
        for (std::size_t i = 0; i < nb.size(); ++i) {
          partial[i] |= nb[i] & bit;
        }
      }
      double max_err = 0.0;
      double sq_err = 0.0;
      for (std::size_t i = 0; i < nb.size(); ++i) {
        const double rec =
            static_cast<double>(FromNegabinary(partial[i])) * inv_scale;
        const double d = std::fabs(coefs[i] - rec);
        max_err = std::max(max_err, d);
        sq_err += d * d;
      }
      stats->max_abs[b] = max_err;
      stats->mse[b] = sq_err * inv_n;
    }
  }
  return set;
}

Result<std::vector<double>> BitplaneEncoder::Decode(const BitplaneSet& set,
                                                    int prefix_planes) const {
  if (prefix_planes < 0 || prefix_planes > set.num_planes) {
    return Status::Invalid("prefix_planes out of range");
  }
  if (static_cast<int>(set.planes.size()) < prefix_planes) {
    return Status::Invalid("BitplaneSet is missing planes");
  }
  const std::size_t plane_bytes = set.PlaneBytes();
  for (int p = 0; p < prefix_planes; ++p) {
    if (set.planes[p].size() != plane_bytes) {
      return Status::Invalid("plane payload has wrong size");
    }
  }
  std::vector<std::uint64_t> nb(set.count, 0);
  for (int p = 0; p < prefix_planes; ++p) {
    const int digit = set.num_planes - 1 - p;
    const std::string& plane = set.planes[p];
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if ((plane[i >> 3] >> (i & 7)) & 1) {
        nb[i] |= std::uint64_t{1} << digit;
      }
    }
  }
  const double inv_scale =
      std::ldexp(1.0, set.exponent - (set.num_planes - 2));
  std::vector<double> coefs(set.count);
  for (std::size_t i = 0; i < nb.size(); ++i) {
    coefs[i] = static_cast<double>(FromNegabinary(nb[i])) * inv_scale;
  }
  return coefs;
}

void SerializeBitplaneSet(const BitplaneSet& set, std::string* out) {
  BinaryWriter w;
  w.Put<std::int32_t>(set.num_planes);
  w.Put<std::int32_t>(set.exponent);
  w.Put<std::uint64_t>(set.count);
  w.Put<std::uint64_t>(set.planes.size());
  for (const std::string& p : set.planes) {
    w.PutString(p);
  }
  *out = w.TakeBuffer();
}

Result<BitplaneSet> DeserializeBitplaneSet(const std::string& in) {
  BinaryReader r(in);
  BitplaneSet set;
  std::int32_t num_planes = 0, exponent = 0;
  std::uint64_t count = 0, n_planes = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&num_planes));
  MGARDP_RETURN_NOT_OK(r.Get(&exponent));
  MGARDP_RETURN_NOT_OK(r.Get(&count));
  MGARDP_RETURN_NOT_OK(r.Get(&n_planes));
  set.num_planes = num_planes;
  set.exponent = exponent;
  set.count = count;
  set.planes.resize(n_planes);
  for (auto& p : set.planes) {
    MGARDP_RETURN_NOT_OK(r.GetString(&p));
  }
  return set;
}

}  // namespace mgardp
