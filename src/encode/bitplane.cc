#include "encode/bitplane.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "encode/negabinary.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mgardp {

BitplaneEncoder::BitplaneEncoder(int num_planes) : num_planes_(num_planes) {
  MGARDP_CHECK(num_planes >= 2 && num_planes <= 60)
      << "num_planes out of range";
}

namespace {

// Chunk size for per-coefficient loops. Fixed (not thread-count-derived) so
// chunked reductions are bit-identical for any MGARDP_THREADS setting.
constexpr std::size_t kCoefGrain = 8192;

// Exponent e with max_abs <= 2^e (e = 0 when the level is all zeros).
int LevelExponent(const std::vector<double>& coefs) {
  // max is exact under reassociation, so the parallel reduce is safe.
  const double max_abs = ParallelReduce<double>(
      0, coefs.size(), kCoefGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double m = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          m = std::max(m, std::fabs(coefs[i]));
        }
        return m;
      },
      [](double a, double b) { return std::max(a, b); });
  if (max_abs == 0.0) {
    return 0;
  }
  int e = static_cast<int>(std::ceil(std::log2(max_abs)));
  // Guard against log2 rounding putting max_abs just above 2^e.
  while (max_abs > std::ldexp(1.0, e)) {
    ++e;
  }
  return e;
}

// Per-chunk accumulator for the error matrix: entry b holds the running
// max-abs / squared-error over the chunk's coefficients at prefix length b.
struct ErrorAccumulator {
  std::vector<double> max_abs;
  std::vector<double> sq_err;
};

}  // namespace

Result<BitplaneSet> BitplaneEncoder::Encode(const std::vector<double>& coefs,
                                            LevelErrorStats* stats) const {
  BitplaneSet set;
  set.num_planes = num_planes_;
  set.count = coefs.size();
  set.exponent = LevelExponent(coefs);
  const std::size_t plane_bytes = set.PlaneBytes();
  set.planes.assign(num_planes_, std::string(plane_bytes, '\0'));

  // Fixed-point scale: |q| <= 2^(B-2), which B nega-binary digits can
  // always represent (max positive value of B digits is (2^B - 1) / 3ish,
  // and 2^(B-2) is safely inside for both signs).
  const double scale = std::ldexp(1.0, num_planes_ - 2 - set.exponent);
  const double inv_scale = 1.0 / scale;

  std::vector<std::uint64_t> nb(coefs.size());
  const std::size_t first_overflow = ParallelReduce<std::size_t>(
      0, coefs.size(), kCoefGrain, coefs.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::size_t bad = coefs.size();
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t q = std::llround(coefs[i] * scale);
          nb[i] = ToNegabinary(q);
          if (NegabinaryDigits(nb[i]) > num_planes_ && bad == coefs.size()) {
            bad = i;
          }
        }
        return bad;
      },
      [](std::size_t a, std::size_t b) { return std::min(a, b); });
  if (first_overflow < coefs.size()) {
    std::ostringstream os;
    os << "coefficient " << coefs[first_overflow] << " overflows "
       << num_planes_ << " nega-binary planes (exponent " << set.exponent
       << ")";
    return Status::Internal(os.str());
  }

  // Slice digits into planes, MSB plane first. Planes are independent
  // outputs, so they fan out across the pool.
  ParallelFor(0, static_cast<std::size_t>(num_planes_), 1,
              [&](std::size_t p_lo, std::size_t p_hi) {
                for (std::size_t p = p_lo; p < p_hi; ++p) {
                  const int digit = num_planes_ - 1 - static_cast<int>(p);
                  std::string& plane = set.planes[p];
                  for (std::size_t i = 0; i < nb.size(); ++i) {
                    if ((nb[i] >> digit) & 1u) {
                      plane[i >> 3] |= static_cast<char>(1u << (i & 7));
                    }
                  }
                }
              });

  if (stats != nullptr) {
    stats->max_abs.assign(num_planes_ + 1, 0.0);
    stats->mse.assign(num_planes_ + 1, 0.0);
    const double inv_n =
        coefs.empty() ? 0.0 : 1.0 / static_cast<double>(coefs.size());
    // Nega-binary digit b contributes exactly (-2)^b, so the prefix
    // reconstruction is linear in the digits: each coefficient's value is
    // tracked incrementally as planes are added, instead of re-deriving it
    // from the partial digit string every plane. Coefficients are
    // independent, so chunks of them reduce in parallel; the fixed grain
    // plus ordered combine keeps the sums reproducible.
    ErrorAccumulator zero;
    zero.max_abs.assign(num_planes_ + 1, 0.0);
    zero.sq_err.assign(num_planes_ + 1, 0.0);
    ErrorAccumulator total = ParallelReduce<ErrorAccumulator>(
        0, coefs.size(), kCoefGrain, zero,
        [&](std::size_t lo, std::size_t hi) {
          ErrorAccumulator acc;
          acc.max_abs.assign(num_planes_ + 1, 0.0);
          acc.sq_err.assign(num_planes_ + 1, 0.0);
          for (std::size_t i = lo; i < hi; ++i) {
            std::int64_t value = 0;  // FromNegabinary of the kept digits
            const double d0 = std::fabs(coefs[i]);
            acc.max_abs[0] = std::max(acc.max_abs[0], d0);
            acc.sq_err[0] += d0 * d0;
            for (int b = 1; b <= num_planes_; ++b) {
              const int digit = num_planes_ - b;
              if ((nb[i] >> digit) & 1u) {
                const std::int64_t mag = std::int64_t{1} << digit;
                value += (digit & 1) ? -mag : mag;
              }
              const double rec = static_cast<double>(value) * inv_scale;
              const double d = std::fabs(coefs[i] - rec);
              acc.max_abs[b] = std::max(acc.max_abs[b], d);
              acc.sq_err[b] += d * d;
            }
          }
          return acc;
        },
        [&](ErrorAccumulator a, ErrorAccumulator b) {
          for (int i = 0; i <= num_planes_; ++i) {
            a.max_abs[i] = std::max(a.max_abs[i], b.max_abs[i]);
            a.sq_err[i] += b.sq_err[i];
          }
          return a;
        });
    for (int b = 0; b <= num_planes_; ++b) {
      stats->max_abs[b] = total.max_abs[b];
      stats->mse[b] = total.sq_err[b] * inv_n;
    }
  }
  return set;
}

Result<std::vector<double>> BitplaneEncoder::Decode(const BitplaneSet& set,
                                                    int prefix_planes) const {
  if (prefix_planes < 0 || prefix_planes > set.num_planes) {
    return Status::Invalid("prefix_planes out of range");
  }
  if (static_cast<int>(set.planes.size()) < prefix_planes) {
    return Status::Invalid("BitplaneSet is missing planes");
  }
  const std::size_t plane_bytes = set.PlaneBytes();
  for (int p = 0; p < prefix_planes; ++p) {
    if (set.planes[p].size() != plane_bytes) {
      return Status::Invalid("plane payload has wrong size");
    }
  }
  const double inv_scale =
      std::ldexp(1.0, set.exponent - (set.num_planes - 2));
  std::vector<double> coefs(set.count);
  // OR the planes together per coefficient chunk (plane-outer iteration
  // would race on the shared digit words); each chunk owns its slice of the
  // output, so the result is scheduling-independent.
  ParallelFor(0, static_cast<std::size_t>(set.count), kCoefGrain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  std::uint64_t nb = 0;
                  for (int p = 0; p < prefix_planes; ++p) {
                    if ((set.planes[p][i >> 3] >> (i & 7)) & 1) {
                      nb |= std::uint64_t{1} << (set.num_planes - 1 - p);
                    }
                  }
                  coefs[i] =
                      static_cast<double>(FromNegabinary(nb)) * inv_scale;
                }
              });
  return coefs;
}

void SerializeBitplaneSet(const BitplaneSet& set, std::string* out) {
  BinaryWriter w;
  w.Put<std::int32_t>(set.num_planes);
  w.Put<std::int32_t>(set.exponent);
  w.Put<std::uint64_t>(set.count);
  w.Put<std::uint64_t>(set.planes.size());
  for (const std::string& p : set.planes) {
    w.PutString(p);
  }
  *out = w.TakeBuffer();
}

Result<BitplaneSet> DeserializeBitplaneSet(const std::string& in) {
  BinaryReader r(in);
  BitplaneSet set;
  std::int32_t num_planes = 0, exponent = 0;
  std::uint64_t count = 0, n_planes = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&num_planes));
  MGARDP_RETURN_NOT_OK(r.Get(&exponent));
  MGARDP_RETURN_NOT_OK(r.Get(&count));
  MGARDP_RETURN_NOT_OK(r.Get(&n_planes));
  set.num_planes = num_planes;
  set.exponent = exponent;
  set.count = count;
  set.planes.resize(n_planes);
  for (auto& p : set.planes) {
    MGARDP_RETURN_NOT_OK(r.GetString(&p));
  }
  return set;
}

}  // namespace mgardp
