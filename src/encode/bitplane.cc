#include "encode/bitplane.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "encode/negabinary.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace mgardp {

BitplaneEncoder::BitplaneEncoder(int num_planes) : num_planes_(num_planes) {
  MGARDP_CHECK(num_planes >= 2 && num_planes <= 60)
      << "num_planes out of range";
}

namespace {

// Chunk size for per-coefficient loops. Fixed (not thread-count-derived) so
// chunked reductions are bit-identical for any MGARDP_THREADS setting. A
// multiple of 64 so transpose blocks never straddle a chunk boundary.
constexpr std::size_t kCoefGrain = 8192;

// Exponent e with max_abs <= 2^e (e = 0 when the level is all zeros).
int LevelExponent(const std::vector<double>& coefs) {
  // max is exact under reassociation, so the parallel reduce is safe.
  const double max_abs = ParallelReduce<double>(
      0, coefs.size(), kCoefGrain, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double m = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          m = std::max(m, std::fabs(coefs[i]));
        }
        return m;
      },
      [](double a, double b) { return std::max(a, b); });
  if (max_abs == 0.0) {
    return 0;
  }
  int e = static_cast<int>(std::ceil(std::log2(max_abs)));
  // Guard against log2 rounding putting max_abs just above 2^e.
  while (max_abs > std::ldexp(1.0, e)) {
    ++e;
  }
  return e;
}

// Per-chunk accumulator for the error matrix: entry b holds the running
// max-abs / squared-error over the chunk's coefficients at prefix length b.
struct ErrorAccumulator {
  std::vector<double> max_abs;
  std::vector<double> sq_err;
};

// Quantizes every coefficient into a nega-binary digit word. Returns the
// index of the first coefficient whose expansion needs more than
// `num_planes` digits, or coefs.size() when all fit.
std::size_t QuantizeNegabinary(const std::vector<double>& coefs, double scale,
                               int num_planes, std::vector<std::uint64_t>* nb) {
  return ParallelReduce<std::size_t>(
      0, coefs.size(), kCoefGrain, coefs.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::size_t bad = coefs.size();
        for (std::size_t i = lo; i < hi; ++i) {
          const std::int64_t q = std::llround(coefs[i] * scale);
          (*nb)[i] = ToNegabinary(q);
          if (NegabinaryDigits((*nb)[i]) > num_planes && bad == coefs.size()) {
            bad = i;
          }
        }
        return bad;
      },
      [](std::size_t a, std::size_t b) { return std::min(a, b); });
}

Status OverflowError(const std::vector<double>& coefs, std::size_t index,
                     int num_planes, int exponent) {
  std::ostringstream os;
  os << "coefficient " << coefs[index] << " overflows " << num_planes
     << " nega-binary planes (exponent " << exponent << ")";
  return Status::Internal(os.str());
}

// Little-endian word <-> plane-byte shuttles. On little-endian hosts the
// full-word forms compile to single unaligned accesses; the byte loops keep
// partial (tail) blocks and big-endian hosts correct.
inline void StoreWordLE(std::uint64_t w, char* dst, std::size_t nbytes) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  if (nbytes == 8) {
    std::memcpy(dst, &w, 8);
    return;
  }
#endif
  for (std::size_t b = 0; b < nbytes; ++b) {
    dst[b] = static_cast<char>(w >> (8 * b));
  }
}

inline std::uint64_t LoadWordLE(const char* src, std::size_t nbytes) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  if (nbytes == 8) {
    std::uint64_t w;
    std::memcpy(&w, src, 8);
    return w;
  }
#endif
  std::uint64_t w = 0;
  for (std::size_t b = 0; b < nbytes; ++b) {
    w |= static_cast<std::uint64_t>(static_cast<unsigned char>(src[b]))
         << (8 * b);
  }
  return w;
}

// Transposes the 64-coefficient block starting at i0 (i0 a multiple of 64)
// and stores one machine word per plane. Block i0 owns plane bytes
// [i0 / 8, i0 / 8 + ceil(nblock / 8)), so concurrent blocks never touch the
// same byte.
inline void EmitBlock(const std::uint64_t* nb, std::size_t i0,
                      std::size_t nblock, int num_planes,
                      std::vector<std::string>* planes) {
  std::uint64_t m[64];
  std::size_t r = 0;
  for (; r < nblock; ++r) {
    m[r] = nb[i0 + r];
  }
  for (; r < 64; ++r) {
    m[r] = 0;
  }
  internal::Transpose64x64(m);
  const std::size_t byte0 = i0 >> 3;
  const std::size_t nbytes = (nblock + 7) >> 3;
  for (int p = 0; p < num_planes; ++p) {
    StoreWordLE(m[num_planes - 1 - p], (*planes)[p].data() + byte0, nbytes);
  }
}

// The per-coefficient error-matrix walk. Value-identical to the reference
// loop in EncodeScalar: that loop recomputes rec = value * inv_scale and
// d = |c - rec| unconditionally every plane, so doing the same here --
// with the digit test folded into a branchless masked add -- feeds the
// accumulators the exact same doubles in the exact same order. The digit
// bits of typical coefficients are close to random, so a data-dependent
// branch in this loop mispredicts about half the time; the masked add is
// what makes stats collection run at memory speed.
inline void AccumulateStats(const std::vector<double>& coefs,
                            const std::uint64_t* nb, std::size_t lo,
                            std::size_t hi, int num_planes, double inv_scale,
                            ErrorAccumulator* acc) {
  // Digit d of a nega-binary word contributes exactly (-2)^d.
  std::int64_t signed_mag[64];
  for (int d = 0; d < num_planes; ++d) {
    const std::int64_t mag = std::int64_t{1} << d;
    signed_mag[d] = (d & 1) ? -mag : mag;
  }
  double* const max_abs = acc->max_abs.data();
  double* const sq_err = acc->sq_err.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint64_t w = nb[i];
    const double c = coefs[i];
    std::int64_t value = 0;  // FromNegabinary of the kept digits
    const double d0 = std::fabs(c);
    max_abs[0] = std::max(max_abs[0], d0);
    sq_err[0] += d0 * d0;
    for (int b = 1; b <= num_planes; ++b) {
      const int digit = num_planes - b;
      const std::int64_t take =
          -static_cast<std::int64_t>((w >> digit) & 1u);
      value += signed_mag[digit] & take;
      const double rec = static_cast<double>(value) * inv_scale;
      const double d = std::fabs(c - rec);
      max_abs[b] = std::max(max_abs[b], d);
      sq_err[b] += d * d;
    }
  }
}

}  // namespace

Result<BitplaneSet> BitplaneEncoder::Encode(const std::vector<double>& coefs,
                                            LevelErrorStats* stats) const {
  BitplaneSet set;
  set.num_planes = num_planes_;
  set.count = coefs.size();
  set.exponent = LevelExponent(coefs);
  const std::size_t plane_bytes = set.PlaneBytes();
  set.planes.assign(num_planes_, std::string(plane_bytes, '\0'));

  // Fixed-point scale: |q| <= 2^(B-2), which B nega-binary digits can
  // always represent (max positive value of B digits is (2^B - 1) / 3ish,
  // and 2^(B-2) is safely inside for both signs).
  const double scale = std::ldexp(1.0, num_planes_ - 2 - set.exponent);
  const double inv_scale = 1.0 / scale;

  std::vector<std::uint64_t> nb(coefs.size());
  const std::size_t first_overflow =
      QuantizeNegabinary(coefs, scale, num_planes_, &nb);
  if (first_overflow < coefs.size()) {
    return OverflowError(coefs, first_overflow, num_planes_, set.exponent);
  }

  // Slice digits into planes, MSB plane first, 64 coefficients per
  // instruction: each 64-word block is bit-transposed so word d holds digit
  // d of all 64 coefficients, which is exactly 8 plane bytes. When the
  // error matrix is requested its accumulation shares the same pass over
  // the transposed blocks.
  const std::size_t n = coefs.size();
  if (stats == nullptr) {
    ParallelFor(0, (n + 63) / 64, kCoefGrain / 64,
                [&](std::size_t b_lo, std::size_t b_hi) {
                  for (std::size_t blk = b_lo; blk < b_hi; ++blk) {
                    const std::size_t i0 = blk * 64;
                    EmitBlock(nb.data(), i0, std::min<std::size_t>(64, n - i0),
                              num_planes_, &set.planes);
                  }
                });
    return set;
  }

  stats->max_abs.assign(num_planes_ + 1, 0.0);
  stats->mse.assign(num_planes_ + 1, 0.0);
  const double inv_n = n == 0 ? 0.0 : 1.0 / static_cast<double>(n);
  // Nega-binary digit b contributes exactly (-2)^b, so the prefix
  // reconstruction is linear in the digits: each coefficient's value is
  // tracked incrementally as planes are added, instead of re-deriving it
  // from the partial digit string every plane. Coefficients are
  // independent, so chunks of them reduce in parallel; the fixed grain
  // plus ordered combine keeps the sums reproducible. Chunks are
  // 64-aligned, so the plane-emitting blocks nest inside them.
  ErrorAccumulator zero;
  zero.max_abs.assign(num_planes_ + 1, 0.0);
  zero.sq_err.assign(num_planes_ + 1, 0.0);
  ErrorAccumulator total = ParallelReduce<ErrorAccumulator>(
      0, n, kCoefGrain, zero,
      [&](std::size_t lo, std::size_t hi) {
        ErrorAccumulator acc;
        acc.max_abs.assign(num_planes_ + 1, 0.0);
        acc.sq_err.assign(num_planes_ + 1, 0.0);
        for (std::size_t i0 = lo; i0 < hi; i0 += 64) {
          const std::size_t nblock = std::min<std::size_t>(64, hi - i0);
          EmitBlock(nb.data(), i0, nblock, num_planes_, &set.planes);
          AccumulateStats(coefs, nb.data(), i0, i0 + nblock, num_planes_,
                          inv_scale, &acc);
        }
        return acc;
      },
      [&](ErrorAccumulator a, ErrorAccumulator b) {
        for (int i = 0; i <= num_planes_; ++i) {
          a.max_abs[i] = std::max(a.max_abs[i], b.max_abs[i]);
          a.sq_err[i] += b.sq_err[i];
        }
        return a;
      });
  for (int b = 0; b <= num_planes_; ++b) {
    stats->max_abs[b] = total.max_abs[b];
    stats->mse[b] = total.sq_err[b] * inv_n;
  }
  return set;
}

Result<std::vector<double>> BitplaneEncoder::Decode(const BitplaneSet& set,
                                                    int prefix_planes) const {
  MGARDP_RETURN_NOT_OK(internal::ValidateBitplaneSet(set, prefix_planes));
  const double inv_scale =
      std::ldexp(1.0, set.exponent - (set.num_planes - 2));
  const std::size_t n = set.count;
  std::vector<double> coefs(n);
  // Gather each 64-coefficient block's plane words, transpose back to
  // coefficient-major nega-binary words, and convert. Each block owns its
  // slice of the output, so the result is scheduling-independent.
  ParallelFor(0, (n + 63) / 64, kCoefGrain / 64,
              [&](std::size_t b_lo, std::size_t b_hi) {
                std::uint64_t m[64];
                for (std::size_t blk = b_lo; blk < b_hi; ++blk) {
                  const std::size_t i0 = blk * 64;
                  const std::size_t nblock = std::min<std::size_t>(64, n - i0);
                  const std::size_t nbytes = (nblock + 7) >> 3;
                  std::memset(m, 0, sizeof(m));
                  for (int p = 0; p < prefix_planes; ++p) {
                    m[set.num_planes - 1 - p] =
                        LoadWordLE(set.planes[p].data() + (i0 >> 3), nbytes);
                  }
                  internal::Transpose64x64(m);
                  for (std::size_t r = 0; r < nblock; ++r) {
                    coefs[i0 + r] =
                        static_cast<double>(FromNegabinary(m[r])) * inv_scale;
                  }
                }
              });
  return coefs;
}

void SerializeBitplaneSet(const BitplaneSet& set, std::string* out) {
  BinaryWriter w;
  w.Put<std::int32_t>(set.num_planes);
  w.Put<std::int32_t>(set.exponent);
  w.Put<std::uint64_t>(set.count);
  w.Put<std::uint64_t>(set.planes.size());
  for (const std::string& p : set.planes) {
    w.PutString(p);
  }
  *out = w.TakeBuffer();
}

Result<BitplaneSet> DeserializeBitplaneSet(const std::string& in) {
  BinaryReader r(in);
  BitplaneSet set;
  std::int32_t num_planes = 0, exponent = 0;
  std::uint64_t count = 0, n_planes = 0;
  MGARDP_RETURN_NOT_OK(r.Get(&num_planes));
  MGARDP_RETURN_NOT_OK(r.Get(&exponent));
  MGARDP_RETURN_NOT_OK(r.Get(&count));
  MGARDP_RETURN_NOT_OK(r.Get(&n_planes));
  // Reject impossible shapes before allocating anything sized by them: a
  // corrupt n_planes would otherwise drive a multi-gigabyte resize, and a
  // count that disagrees with the stored payload sizes would let Decode
  // index past plane ends.
  if (num_planes < 2 || num_planes > 60) {
    return Status::Invalid("BitplaneSet: num_planes out of range");
  }
  if (n_planes > static_cast<std::uint64_t>(num_planes)) {
    return Status::Invalid("BitplaneSet: more planes than num_planes");
  }
  set.num_planes = num_planes;
  set.exponent = exponent;
  set.count = count;
  set.planes.resize(n_planes);
  for (auto& p : set.planes) {
    MGARDP_RETURN_NOT_OK(r.GetString(&p));
    if (p.size() != set.PlaneBytes()) {
      return Status::Invalid("BitplaneSet: plane size disagrees with count");
    }
  }
  return set;
}

namespace internal {

Status ValidateBitplaneSet(const BitplaneSet& set, int prefix_planes) {
  if (set.num_planes < 2 || set.num_planes > 60) {
    return Status::Invalid("BitplaneSet: num_planes out of range");
  }
  if (prefix_planes < 0 || prefix_planes > set.num_planes) {
    return Status::Invalid("prefix_planes out of range");
  }
  if (set.planes.size() > static_cast<std::size_t>(set.num_planes)) {
    return Status::Invalid("BitplaneSet: more planes than num_planes");
  }
  if (set.planes.size() < static_cast<std::size_t>(prefix_planes)) {
    return Status::Invalid("BitplaneSet is missing planes");
  }
  // Validate every present plane, not just the first prefix_planes: a set
  // whose tail planes are malformed is corrupt even when this particular
  // decode would not touch them.
  const std::size_t plane_bytes = set.PlaneBytes();
  for (const std::string& p : set.planes) {
    if (p.size() != plane_bytes) {
      return Status::Invalid("plane payload has wrong size");
    }
  }
  return Status::OK();
}

void SlicePlanesScalar(const std::uint64_t* nb, std::size_t count,
                       int num_planes, std::vector<std::string>* planes) {
  for (int p = 0; p < num_planes; ++p) {
    const int digit = num_planes - 1 - p;
    std::string& plane = (*planes)[p];
    for (std::size_t i = 0; i < count; ++i) {
      if ((nb[i] >> digit) & 1u) {
        plane[i >> 3] |= static_cast<char>(1u << (i & 7));
      }
    }
  }
}

Result<BitplaneSet> EncodeScalar(const std::vector<double>& coefs,
                                 int num_planes, LevelErrorStats* stats) {
  MGARDP_CHECK(num_planes >= 2 && num_planes <= 60)
      << "num_planes out of range";
  BitplaneSet set;
  set.num_planes = num_planes;
  set.count = coefs.size();
  set.exponent = LevelExponent(coefs);
  set.planes.assign(num_planes, std::string(set.PlaneBytes(), '\0'));

  const double scale = std::ldexp(1.0, num_planes - 2 - set.exponent);
  const double inv_scale = 1.0 / scale;

  std::vector<std::uint64_t> nb(coefs.size());
  const std::size_t first_overflow =
      QuantizeNegabinary(coefs, scale, num_planes, &nb);
  if (first_overflow < coefs.size()) {
    return OverflowError(coefs, first_overflow, num_planes, set.exponent);
  }

  SlicePlanesScalar(nb.data(), coefs.size(), num_planes, &set.planes);

  if (stats != nullptr) {
    stats->max_abs.assign(num_planes + 1, 0.0);
    stats->mse.assign(num_planes + 1, 0.0);
    const double inv_n =
        coefs.empty() ? 0.0 : 1.0 / static_cast<double>(coefs.size());
    ErrorAccumulator zero;
    zero.max_abs.assign(num_planes + 1, 0.0);
    zero.sq_err.assign(num_planes + 1, 0.0);
    ErrorAccumulator total = ParallelReduce<ErrorAccumulator>(
        0, coefs.size(), kCoefGrain, zero,
        [&](std::size_t lo, std::size_t hi) {
          ErrorAccumulator acc;
          acc.max_abs.assign(num_planes + 1, 0.0);
          acc.sq_err.assign(num_planes + 1, 0.0);
          for (std::size_t i = lo; i < hi; ++i) {
            std::int64_t value = 0;  // FromNegabinary of the kept digits
            const double d0 = std::fabs(coefs[i]);
            acc.max_abs[0] = std::max(acc.max_abs[0], d0);
            acc.sq_err[0] += d0 * d0;
            for (int b = 1; b <= num_planes; ++b) {
              const int digit = num_planes - b;
              if ((nb[i] >> digit) & 1u) {
                const std::int64_t mag = std::int64_t{1} << digit;
                value += (digit & 1) ? -mag : mag;
              }
              const double rec = static_cast<double>(value) * inv_scale;
              const double d = std::fabs(coefs[i] - rec);
              acc.max_abs[b] = std::max(acc.max_abs[b], d);
              acc.sq_err[b] += d * d;
            }
          }
          return acc;
        },
        [&](ErrorAccumulator a, ErrorAccumulator b) {
          for (int i = 0; i <= num_planes; ++i) {
            a.max_abs[i] = std::max(a.max_abs[i], b.max_abs[i]);
            a.sq_err[i] += b.sq_err[i];
          }
          return a;
        });
    for (int b = 0; b <= num_planes; ++b) {
      stats->max_abs[b] = total.max_abs[b];
      stats->mse[b] = total.sq_err[b] * inv_n;
    }
  }
  return set;
}

Result<std::vector<double>> DecodeScalar(const BitplaneSet& set,
                                         int prefix_planes) {
  MGARDP_RETURN_NOT_OK(ValidateBitplaneSet(set, prefix_planes));
  const double inv_scale =
      std::ldexp(1.0, set.exponent - (set.num_planes - 2));
  std::vector<double> coefs(set.count);
  ParallelFor(0, static_cast<std::size_t>(set.count), kCoefGrain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  std::uint64_t nb = 0;
                  for (int p = 0; p < prefix_planes; ++p) {
                    if ((set.planes[p][i >> 3] >> (i & 7)) & 1) {
                      nb |= std::uint64_t{1} << (set.num_planes - 1 - p);
                    }
                  }
                  coefs[i] =
                      static_cast<double>(FromNegabinary(nb)) * inv_scale;
                }
              });
  return coefs;
}

}  // namespace internal

}  // namespace mgardp
