// 3D Gray-Scott reaction-diffusion solver.
//
// The paper's first evaluation dataset comes from the Gray-Scott
// mini-application (Pearson, Science 1993): two species U, V on a periodic
// cube evolving under
//   du/dt = Du lap(u) - u v^2 + F (1 - u)
//   dv/dt = Dv lap(v) + u v^2 - (F + k) v
// integrated with forward Euler and a 7-point Laplacian, with a time step
// inside the diffusion stability limit. The paper labels the dumped fields
// D_u and D_v; they are the U and V concentrations.

#ifndef MGARDP_SIM_GRAY_SCOTT_H_
#define MGARDP_SIM_GRAY_SCOTT_H_

#include <cstdint>

#include "util/array3d.h"
#include "util/status.h"

namespace mgardp {

struct GrayScottParams {
  double du = 0.2;   // diffusion rate of U
  double dv = 0.1;   // diffusion rate of V
  // F/k sit in the self-replicating-spot ("soliton") regime so patterns
  // persist even on the small periodic grids the tests/benches use; the
  // ORNL example's F = 0.01, k = 0.05 dies out below ~64^3.
  double feed = 0.03;  // F
  double kill = 0.065;  // k
  double dt = 0.5;   // forward-Euler step (stability: dt < 1/(6 du))
  double noise = 1e-6;  // initial perturbation amplitude
  std::uint64_t seed = 7;
};

class GrayScottSimulator {
 public:
  // Initializes u = 1, v = 0 with a perturbed central seed block
  // (u = 0.25, v = 0.33), the standard pattern-forming start.
  GrayScottSimulator(Dims3 dims, GrayScottParams params = {});

  const Dims3& dims() const { return u_.dims(); }
  const GrayScottParams& params() const { return params_; }

  // Advances the simulation by `steps` Euler steps.
  void Step(int steps = 1);

  int step_count() const { return step_count_; }
  const Array3Dd& u() const { return u_; }
  const Array3Dd& v() const { return v_; }

 private:
  GrayScottParams params_;
  Array3Dd u_, v_;
  Array3Dd u_next_, v_next_;
  int step_count_ = 0;
};

}  // namespace mgardp

#endif  // MGARDP_SIM_GRAY_SCOTT_H_
