// Synthetic WarpX-like laser-driven electron acceleration fields.
//
// The paper's second dataset comes from WarpX (a GPU particle-in-cell code
// we cannot run here). This generator is the documented substitution: an
// analytic laser-wakefield model producing the same three scalar fields the
// paper uses -- B_x, E_x, J_x -- on a 3D grid, evolving over timesteps, and
// parameterized by the same simulation inputs the paper sweeps in Fig. 3:
// laser peak amplitude (a0), laser duration (tau), and electron density
// (n_e). A laser pulse with carrier k0 and Gaussian envelope of length
// c*tau travels through the domain; behind it a plasma wake oscillates at
// the plasma wavenumber k_p ~ sqrt(n_e), and a deterministic multi-mode
// perturbation adds the broadband structure real PIC data has. Density
// changes the wake wavelength (data smoothness) and amplitude changes the
// dynamic range, which is exactly the interplay the DNN must capture.

#ifndef MGARDP_SIM_WARPX_H_
#define MGARDP_SIM_WARPX_H_

#include <cstdint>
#include <string>

#include "util/array3d.h"
#include "util/status.h"

namespace mgardp {

enum class WarpXField { kBx, kEx, kJx };

// "B_x" / "E_x" / "J_x".
std::string WarpXFieldName(WarpXField field);

struct WarpXParams {
  double laser_amplitude = 8.0;   // a0, normalized peak amplitude
  double laser_duration = 0.06;   // tau: pulse length = c * tau (domain = 1)
  double electron_density = 4.0;  // n_e, normalized
  double pulse_speed = 0.08;      // domain lengths per timestep
  double carrier_wavenumber = 40.0 * 3.14159265358979323846;  // k0
  double spot_size = 0.35;        // transverse waist w0 (domain units)
  double perturbation = 0.02;     // relative multi-mode noise amplitude
  std::uint64_t seed = 42;
};

class WarpXSimulator {
 public:
  WarpXSimulator(Dims3 dims, WarpXParams params = {});

  const Dims3& dims() const { return dims_; }
  const WarpXParams& params() const { return params_; }

  // Evaluates `field` at `timestep` (stateless: any order, any step).
  Array3Dd Field(WarpXField field, int timestep) const;

 private:
  double Evaluate(WarpXField field, double x, double y, double z,
                  int timestep) const;

  Dims3 dims_;
  WarpXParams params_;
  // Deterministic random phases/directions for the perturbation modes.
  static constexpr int kNumModes = 6;
  double mode_kx_[kNumModes], mode_ky_[kNumModes], mode_kz_[kNumModes];
  double mode_phase_[kNumModes], mode_amp_[kNumModes];
};

}  // namespace mgardp

#endif  // MGARDP_SIM_WARPX_H_
