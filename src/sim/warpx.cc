#include "sim/warpx.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace mgardp {

std::string WarpXFieldName(WarpXField field) {
  switch (field) {
    case WarpXField::kBx:
      return "B_x";
    case WarpXField::kEx:
      return "E_x";
    case WarpXField::kJx:
      return "J_x";
  }
  return "?";
}

WarpXSimulator::WarpXSimulator(Dims3 dims, WarpXParams params)
    : dims_(dims), params_(params) {
  MGARDP_CHECK_GT(dims.size(), 0u);
  Rng rng(params_.seed);
  for (int m = 0; m < kNumModes; ++m) {
    // Broadband perturbation: wavenumbers grow with mode index, random
    // orientation and phase, 1/k amplitude falloff.
    const double k = 2.0 * M_PI * static_cast<double>(2 << m);
    mode_kx_[m] = k * rng.Uniform(0.5, 1.0);
    mode_ky_[m] = k * rng.Uniform(0.2, 1.0);
    mode_kz_[m] = k * rng.Uniform(0.2, 1.0);
    mode_phase_[m] = rng.Uniform(0.0, 2.0 * M_PI);
    mode_amp_[m] = 1.0 / static_cast<double>(1 << m);
  }
}

double WarpXSimulator::Evaluate(WarpXField field, double x, double y,
                                double z, int timestep) const {
  const WarpXParams& p = params_;
  // Pulse center advances with the group velocity; it starts just outside
  // the domain so early timesteps see the pulse entering.
  const double xc = -2.0 * p.laser_duration +
                    p.pulse_speed * static_cast<double>(timestep);
  const double xi = x - xc;                      // co-moving coordinate
  const double sigma = p.laser_duration;         // envelope length (c = 1)
  const double envelope = std::exp(-0.5 * (xi / sigma) * (xi / sigma));
  const double r2 = (y - 0.5) * (y - 0.5) + (z - 0.5) * (z - 0.5);
  const double transverse = std::exp(-r2 / (p.spot_size * p.spot_size));

  // Plasma wake behind the pulse: wavenumber scales with sqrt(n_e); the
  // wake amplitude grows with a0 and decays slowly behind the driver.
  const double kp = 2.0 * M_PI * 8.0 * std::sqrt(p.electron_density);
  const double behind = xi < 0.0 ? 1.0 : 0.0;
  const double wake_decay = behind * std::exp(0.15 * xi * kp / (2.0 * M_PI));
  const double wake_amp = 0.3 * p.laser_amplitude *
                          std::sqrt(p.electron_density);

  // Broadband perturbation (frozen turbulence advected with the pulse).
  double noise = 0.0;
  for (int m = 0; m < kNumModes; ++m) {
    noise += mode_amp_[m] * std::sin(mode_kx_[m] * (x - 0.1 * xc) +
                                     mode_ky_[m] * y + mode_kz_[m] * z +
                                     mode_phase_[m]);
  }
  noise *= p.perturbation;

  switch (field) {
    case WarpXField::kEx: {
      // Longitudinal field: laser carrier under the envelope plus the
      // accelerating wakefield behind it.
      const double laser = p.laser_amplitude * envelope *
                           std::cos(p.carrier_wavenumber * xi);
      const double wake = wake_amp * wake_decay * std::sin(kp * xi);
      return (laser + wake) * transverse * (1.0 + noise);
    }
    case WarpXField::kBx: {
      // Longitudinal magnetic field is zero for an ideal plane pulse; what
      // remains is the azimuthal asymmetry term plus wake curl.
      const double asym = (y - 0.5) / p.spot_size;
      const double laser = 0.25 * p.laser_amplitude * envelope *
                           std::sin(p.carrier_wavenumber * xi) * asym;
      const double wake = 0.15 * wake_amp * wake_decay *
                          std::cos(kp * xi) * asym;
      return (laser + wake) * transverse * (1.0 + noise);
    }
    case WarpXField::kJx: {
      // Longitudinal current density: electron oscillation in the wake,
      // proportional to density.
      const double wake = p.electron_density * wake_amp * wake_decay *
                          std::cos(kp * xi);
      const double ponderomotive = 0.05 * p.laser_amplitude *
                                   p.electron_density * envelope;
      return (wake + ponderomotive) * transverse * (1.0 + noise);
    }
  }
  return 0.0;
}

Array3Dd WarpXSimulator::Field(WarpXField field, int timestep) const {
  Array3Dd out(dims_);
  auto coord = [](std::size_t i, std::size_t n) -> double {
    return n == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(n - 1);
  };
  for (std::size_t i = 0; i < dims_.nx; ++i) {
    const double x = coord(i, dims_.nx);
    for (std::size_t j = 0; j < dims_.ny; ++j) {
      const double y = coord(j, dims_.ny);
      for (std::size_t k = 0; k < dims_.nz; ++k) {
        const double z = coord(k, dims_.nz);
        out(i, j, k) = Evaluate(field, x, y, z, timestep);
      }
    }
  }
  return out;
}

}  // namespace mgardp
