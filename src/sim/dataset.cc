#include "sim/dataset.h"

namespace mgardp {

std::vector<FieldSeries> GenerateGrayScott(
    const GrayScottDatasetOptions& options) {
  GrayScottSimulator sim(options.dims, options.params);
  sim.Step(options.warmup_steps);
  FieldSeries u_series{"gray-scott", "D_u", {}};
  FieldSeries v_series{"gray-scott", "D_v", {}};
  u_series.frames.reserve(options.num_timesteps);
  v_series.frames.reserve(options.num_timesteps);
  for (int t = 0; t < options.num_timesteps; ++t) {
    if (t > 0) {
      sim.Step(options.steps_per_dump);
    }
    u_series.frames.push_back(sim.u());
    v_series.frames.push_back(sim.v());
  }
  std::vector<FieldSeries> out;
  out.push_back(std::move(u_series));
  out.push_back(std::move(v_series));
  return out;
}

FieldSeries GenerateWarpX(const WarpXDatasetOptions& options,
                          WarpXField field) {
  WarpXSimulator sim(options.dims, options.params);
  FieldSeries series{"warpx", WarpXFieldName(field), {}};
  series.frames.reserve(options.num_timesteps);
  for (int t = 0; t < options.num_timesteps; ++t) {
    series.frames.push_back(sim.Field(field, t));
  }
  return series;
}

void SplitTimesteps(int num_timesteps, std::vector<int>* train,
                    std::vector<int>* test) {
  train->clear();
  test->clear();
  const int half = num_timesteps / 2;
  for (int t = 0; t < num_timesteps; ++t) {
    (t < half ? train : test)->push_back(t);
  }
}

}  // namespace mgardp
