#include "sim/gray_scott.h"

#include "util/logging.h"
#include "util/rng.h"

namespace mgardp {

GrayScottSimulator::GrayScottSimulator(Dims3 dims, GrayScottParams params)
    : params_(params),
      u_(dims, 1.0),
      v_(dims, 0.0),
      u_next_(dims),
      v_next_(dims) {
  MGARDP_CHECK_GT(dims.size(), 0u);
  MGARDP_CHECK_LT(params_.dt, 1.0 / (6.0 * params_.du))
      << "dt violates the forward-Euler diffusion stability limit";
  // Seed block: the central third of the domain.
  Rng rng(params_.seed);
  const std::size_t cx0 = dims.nx / 3, cx1 = dims.nx - dims.nx / 3;
  const std::size_t cy0 = dims.ny / 3, cy1 = dims.ny - dims.ny / 3;
  const std::size_t cz0 = dims.nz / 3, cz1 = dims.nz - dims.nz / 3;
  for (std::size_t i = 0; i < dims.nx; ++i) {
    for (std::size_t j = 0; j < dims.ny; ++j) {
      for (std::size_t k = 0; k < dims.nz; ++k) {
        const bool in_seed = (dims.nx == 1 || (i >= cx0 && i < cx1)) &&
                             (dims.ny == 1 || (j >= cy0 && j < cy1)) &&
                             (dims.nz == 1 || (k >= cz0 && k < cz1));
        if (in_seed) {
          u_(i, j, k) = 0.25 + params_.noise * rng.NextGaussian();
          v_(i, j, k) = 0.33 + params_.noise * rng.NextGaussian();
        } else {
          u_(i, j, k) += params_.noise * rng.NextGaussian();
        }
      }
    }
  }
}

void GrayScottSimulator::Step(int steps) {
  const Dims3& d = u_.dims();
  auto wrap = [](std::size_t i, std::size_t n, long delta) -> std::size_t {
    // Periodic boundary.
    const long m = static_cast<long>(i) + delta;
    if (m < 0) {
      return n - 1;
    }
    if (m >= static_cast<long>(n)) {
      return 0;
    }
    return static_cast<std::size_t>(m);
  };
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < d.nx; ++i) {
      const std::size_t im = wrap(i, d.nx, -1), ip = wrap(i, d.nx, +1);
      for (std::size_t j = 0; j < d.ny; ++j) {
        const std::size_t jm = wrap(j, d.ny, -1), jp = wrap(j, d.ny, +1);
        for (std::size_t k = 0; k < d.nz; ++k) {
          const std::size_t km = wrap(k, d.nz, -1), kp = wrap(k, d.nz, +1);
          const double u = u_(i, j, k);
          const double v = v_(i, j, k);
          double lap_u = -6.0 * u + u_(im, j, k) + u_(ip, j, k) +
                         u_(i, jm, k) + u_(i, jp, k) + u_(i, j, km) +
                         u_(i, j, kp);
          double lap_v = -6.0 * v + v_(im, j, k) + v_(ip, j, k) +
                         v_(i, jm, k) + v_(i, jp, k) + v_(i, j, km) +
                         v_(i, j, kp);
          const double uvv = u * v * v;
          u_next_(i, j, k) =
              u + params_.dt * (params_.du * lap_u - uvv +
                                params_.feed * (1.0 - u));
          v_next_(i, j, k) =
              v + params_.dt * (params_.dv * lap_v + uvv -
                                (params_.feed + params_.kill) * v);
        }
      }
    }
    std::swap(u_, u_next_);
    std::swap(v_, v_next_);
    ++step_count_;
  }
}

}  // namespace mgardp
