// Dataset assembly: named field series over simulation timesteps, matching
// Table II of the paper (Gray-Scott: D_u, D_v; WarpX: B_x, E_x, J_x), plus
// the train/test split protocol (first half of the timesteps for training,
// second half for testing).

#ifndef MGARDP_SIM_DATASET_H_
#define MGARDP_SIM_DATASET_H_

#include <string>
#include <vector>

#include "sim/gray_scott.h"
#include "sim/warpx.h"
#include "util/array3d.h"

namespace mgardp {

// One scalar field dumped at a sequence of timesteps.
struct FieldSeries {
  std::string application;  // "gray-scott" | "warpx"
  std::string field;        // "D_u", "B_x", ...
  std::vector<Array3Dd> frames;

  int num_timesteps() const { return static_cast<int>(frames.size()); }
};

struct GrayScottDatasetOptions {
  Dims3 dims{33, 33, 33};
  int num_timesteps = 32;
  // Euler steps between dumps; patterns need a few hundred total steps to
  // develop, so warmup runs before the first dump.
  int steps_per_dump = 20;
  int warmup_steps = 100;
  GrayScottParams params;
};

// Runs the solver once and dumps both fields ("D_u" = U, "D_v" = V).
// Returned vector holds exactly {D_u, D_v}.
std::vector<FieldSeries> GenerateGrayScott(
    const GrayScottDatasetOptions& options);

struct WarpXDatasetOptions {
  Dims3 dims{33, 33, 33};
  int num_timesteps = 32;
  WarpXParams params;
};

// Evaluates one WarpX field over the timesteps.
FieldSeries GenerateWarpX(const WarpXDatasetOptions& options,
                          WarpXField field);

// Splits [0, n) timestep indices into first half (train) / second half
// (test), as in Sec. IV-A4.
void SplitTimesteps(int num_timesteps, std::vector<int>* train,
                    std::vector<int>* test);

}  // namespace mgardp

#endif  // MGARDP_SIM_DATASET_H_
