// Prometheus text-exposition (version 0.0.4) export for the audit layer
// and any Histogram-backed metric.
//
// PromWriter builds a well-formed exposition: one `# HELP` + `# TYPE`
// header per metric family, then the family's sample lines (labels
// escaped per the format: backslash, double-quote, and newline). For
// histograms it emits the cumulative `_bucket{le=...}` series, `_sum`,
// and `_count`, computed from one coherent pass over the bucket counters
// so `_count` always equals the `+Inf` bucket even while writers race.
//
// AppendAuditMetrics renders the ErrorControlAuditor as:
//   mgardp_audit_records_total{model=...}            counter
//   mgardp_audit_bound_violations_total{model=...}   counter
//   mgardp_audit_bound_satisfied_total{model=...}    counter
//   mgardp_audit_estimate_only_total{model=...}      counter
//   mgardp_audit_degraded_total{model=...}           counter
//   mgardp_audit_violation_magnitude{model=...}      histogram
//   mgardp_audit_overfetch_ratio{model=...}          histogram
//   mgardp_audit_tightness_ratio{model=...}          histogram
//   mgardp_audit_level_drift_window_mean_planes{model=...,level=...} gauge
//   mgardp_audit_level_drift_window_max_abs_planes{...}              gauge
//   mgardp_audit_level_drift_alert{...}                              gauge
//
// PeriodicPromFlusher is the snapshot sink for long-running services
// (serve-bench --prom): a background thread renders and atomically
// replaces the target file every interval, flushes once more on Stop(),
// and shuts down cleanly from the destructor.

#ifndef MGARDP_OBS_PROM_EXPORT_H_
#define MGARDP_OBS_PROM_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mgardp {

class Histogram;

namespace obs {

class ErrorControlAuditor;

class PromWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  // Starts a metric family: emits `# HELP` and `# TYPE` lines and makes
  // `name` the target of subsequent Sample/HistogramSeries calls. `type`
  // is "counter", "gauge", or "histogram".
  void Family(const std::string& name, const std::string& type,
              const std::string& help);

  // One sample line for the current family.
  void Sample(const Labels& labels, double value);

  // The cumulative _bucket/_sum/_count series of `histogram` under the
  // current (histogram-typed) family name, with `labels` on every line.
  void HistogramSeries(const Labels& labels, const Histogram& histogram);

  const std::string& str() const { return out_; }

  static std::string EscapeLabelValue(const std::string& value);
  static std::string EscapeHelp(const std::string& help);
  // Prometheus sample/`le` value formatting: "+Inf" for +infinity,
  // integers without a mantissa, %.9g otherwise.
  static std::string FormatValue(double value);

 private:
  void SeriesLine(const std::string& name, const Labels& labels,
                  const std::string& value);

  std::string out_;
  std::string family_;
};

// Renders `auditor` into `writer` (see the family list above).
void AppendAuditMetrics(const ErrorControlAuditor& auditor,
                        PromWriter* writer);

// Convenience: the global-style one-shot exposition of one auditor.
std::string RenderAuditPrometheus(const ErrorControlAuditor& auditor);

// Writes `content` to `path` atomically (temp file + rename), so a
// scraper never observes a half-written exposition.
Status WritePromFile(const std::string& path, const std::string& content);

class PeriodicPromFlusher {
 public:
  // Renders `render()` into `path` every `interval` until Stop(). The
  // first flush happens after one interval; Stop() always performs a
  // final flush so the file reflects the end state.
  PeriodicPromFlusher(std::string path, std::chrono::milliseconds interval,
                      std::function<std::string()> render);
  ~PeriodicPromFlusher();

  PeriodicPromFlusher(const PeriodicPromFlusher&) = delete;
  PeriodicPromFlusher& operator=(const PeriodicPromFlusher&) = delete;

  // Idempotent: wakes the thread, joins it, and flushes one final time.
  // Returns the status of the final write.
  Status Stop();

  std::uint64_t flushes() const;
  // First write error observed by the background thread (OK if none).
  Status last_error() const;

 private:
  void Loop();
  Status FlushOnce();

  const std::string path_;
  const std::chrono::milliseconds interval_;
  const std::function<std::string()> render_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::uint64_t flushes_ = 0;
  Status last_error_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_PROM_EXPORT_H_
