// Error-control auditing: is the error control honest, and at what cost?
//
// The paper's central trade is D-MGARD giving up the hard error guarantee
// for one-shot efficiency while E-MGARD keeps the guarantee with learned
// per-level constants. The tracing layer (tracer.h) says where time goes;
// this layer says whether the *error control* held: every retrieval path
// feeds one AuditRecord per request — requested tolerance, the
// estimator/model's predicted error, the actual achieved error when the
// caller supplied ground truth (else the record is estimate-only), bytes
// fetched, the oracle-minimum bytes derived from the stored per-level
// error matrices, and the predicted vs. matrix-oracle bit-plane prefix
// per level.
//
// The ErrorControlAuditor aggregates per model (baseline / dmgard /
// emgard / hybrid / ...):
//   * bound-violation accounting: records = violations + satisfied +
//     estimate_only, violation magnitude (actual/requested) histogram;
//   * overfetch ratio (bytes fetched / oracle bytes) — how far from the
//     information floor the planner landed;
//   * estimator tightness (predicted/actual) — how conservative the
//     error model is;
//   * per-level b_l prediction-error distributions with a rolling window
//     that acts as a drift monitor for the D-MGARD CMOR chain and the
//     E-MGARD C_l encoders: snapshots surface window mean/max drift and
//     an alert flag against a configurable threshold.
//
// Cost contract: recording is a handful of relaxed atomic increments and
// wait-free histogram records plus one short per-model mutex hold for the
// drift window; no allocation on the steady path and never an O(N) pass
// over field data — actual errors are computed by the *caller*, and only
// when it opted in by providing ground truth.
//
// The process-wide instance is GlobalAuditor(); the retrieval paths
// (Reconstructor, FaultTolerantReconstructor, RetrievalSession) feed it by
// default and accept an explicit auditor for tests.

#ifndef MGARDP_OBS_AUDIT_H_
#define MGARDP_OBS_AUDIT_H_

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/stats.h"

namespace mgardp {
namespace obs {

class PromWriter;

// One audited retrieval request.
struct AuditRecord {
  std::string model;  // "baseline", "dmgard", "emgard", "hybrid", ...
  // Trace id of the request this retrieval served (0 when it ran outside
  // any traced request). Joins `mgardp audit` violations to the flight
  // recorder's retained lanes: a violated bound names the exact request
  // trace to pull up.
  std::uint64_t trace_id = 0;
  double requested_tolerance = 0.0;
  // What the estimator/model claimed the error would be at the fetched
  // prefix (for D-MGARD, the tolerance it aimed its prediction at).
  double predicted_error = 0.0;
  // Ground-truth max error; NaN (the default) marks estimate-only records.
  double actual_error = std::numeric_limits<double>::quiet_NaN();
  bool degraded = false;  // fault-tolerant path lost segments
  std::size_t bytes_fetched = 0;
  // Cheapest bytes per the stored error matrices (0: not computed).
  std::size_t oracle_bytes = 0;
  // Per-level plane counts: what the planner/model chose vs. what the
  // matrix oracle needed. Both empty or both num_levels long; they feed
  // the per-level drift monitors.
  std::vector<int> predicted_prefix;
  std::vector<int> oracle_prefix;

  // Optional training-example payload, populated by the retrieval paths
  // only when the auditor has sinks registered (wants_examples()): the
  // field summary the models derive data features from, the per-level
  // coefficient sketches, and the per-level error-matrix values at the
  // fetched prefix. Aggregation ignores these; they exist so AuditSink
  // subscribers (the learning subsystem's TrainingSetCollector) can
  // rebuild training rows without re-touching field data. sketches being
  // non-empty marks a record that carries examples.
  FieldSummary summary;
  std::vector<std::vector<double>> sketches;
  std::vector<double> level_errors;

  bool has_examples() const { return !sketches.empty(); }

  bool has_actual() const { return !std::isnan(actual_error); }
};

// Push-based subscription to audit records. Implementations must be
// thread-safe: OnRecord is invoked from whatever thread called
// ErrorControlAuditor::Record, potentially concurrently. Keep it cheap —
// it sits on the retrieval path.
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void OnRecord(const AuditRecord& record) = 0;
};

class ErrorControlAuditor {
 public:
  struct Options {
    // Samples per (model, level) rolling drift window.
    int drift_window = 256;
    // Window mean |predicted - oracle| planes beyond which the level is
    // flagged as drifting (model needs retraining / constants went stale).
    double drift_alert_planes = 2.0;
  };

  // Flat summary of one ratio histogram.
  struct RatioSummary {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  struct LevelDrift {
    int level = 0;
    std::uint64_t count = 0;      // lifetime samples
    double mean = 0.0;            // lifetime mean signed error (planes)
    double max_abs = 0.0;         // lifetime max |error|
    double window_mean = 0.0;     // rolling-window mean signed error
    double window_mean_abs = 0.0; // rolling-window mean |error|
    double window_max_abs = 0.0;  // rolling-window max |error|
    bool alert = false;           // window_mean_abs > drift_alert_planes
  };

  struct ModelSnapshot {
    std::string model;
    std::uint64_t records = 0;
    std::uint64_t violations = 0;     // actual > requested
    std::uint64_t satisfied = 0;      // actual <= requested
    std::uint64_t estimate_only = 0;  // no ground truth supplied
    std::uint64_t degraded = 0;
    // Trace id of the most recent bound violation (0: none yet, or the
    // violating request was not traced).
    std::uint64_t last_violation_trace_id = 0;
    RatioSummary violation_magnitude;  // actual / requested
    RatioSummary overfetch;            // bytes fetched / oracle bytes
    RatioSummary tightness;            // predicted / actual
    std::vector<LevelDrift> drift;

    // Violations over ground-truthed records (0 when none were checked).
    double violation_rate() const {
      const std::uint64_t checked = violations + satisfied;
      return checked == 0 ? 0.0
                          : static_cast<double>(violations) /
                                static_cast<double>(checked);
    }
    bool drift_alert() const {
      for (const LevelDrift& d : drift) {
        if (d.alert) {
          return true;
        }
      }
      return false;
    }
  };

  struct Snapshot {
    std::vector<ModelSnapshot> models;  // sorted by model name

    // JSON array of per-model objects ("[]" when no records yet).
    std::string ToJson() const;
  };

  ErrorControlAuditor();
  explicit ErrorControlAuditor(Options options);

  ErrorControlAuditor(const ErrorControlAuditor&) = delete;
  ErrorControlAuditor& operator=(const ErrorControlAuditor&) = delete;

  const Options& options() const { return options_; }

  // Thread-safe; see the cost contract above. Registered sinks are
  // invoked after aggregation, on the caller's thread.
  void Record(const AuditRecord& record);

  // Sink registration. The auditor does not own sinks; callers must
  // RemoveSink before destroying one. Both take an exclusive lock — they
  // are setup/teardown operations, not steady-path ones.
  void AddSink(AuditSink* sink);
  void RemoveSink(AuditSink* sink);

  // True when at least one sink is registered. Retrieval paths use this
  // to decide whether paying for AuditRecord's example payload (feature/
  // sketch copies) buys anything.
  bool wants_examples() const {
    return sink_count_.load(std::memory_order_acquire) > 0;
  }

  Snapshot snapshot() const;
  std::string ToJson() const { return snapshot().ToJson(); }

  // Total records across all models (cheap; for tests and gating).
  std::uint64_t total_records() const;

  // Drops all counts and windows; registered models survive.
  void Reset();

 private:
  friend void AppendAuditMetrics(const ErrorControlAuditor& auditor,
                                 PromWriter* writer);

  struct LevelDriftState {
    std::uint64_t count = 0;
    double sum = 0.0;      // lifetime signed sum
    double max_abs = 0.0;  // lifetime max |error|
    std::vector<double> ring;  // most recent window of signed errors
    std::size_t next = 0;      // ring write cursor
  };

  struct ModelStats {
    explicit ModelStats(std::string model_name);

    std::string name;
    std::atomic<std::uint64_t> records{0};
    std::atomic<std::uint64_t> violations{0};
    std::atomic<std::uint64_t> satisfied{0};
    std::atomic<std::uint64_t> estimate_only{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> last_violation_trace_id{0};
    Histogram violation_magnitude;
    Histogram overfetch;
    Histogram tightness;

    mutable std::mutex drift_mu;
    std::vector<LevelDriftState> drift;  // indexed by level
  };

  ModelStats* GetOrCreate(const std::string& model);

  Options options_;
  mutable std::shared_mutex mu_;  // guards the models_ vector itself
  std::vector<std::unique_ptr<ModelStats>> models_;

  mutable std::shared_mutex sinks_mu_;  // guards sinks_
  std::vector<AuditSink*> sinks_;
  std::atomic<int> sink_count_{0};  // fast-path gate for wants_examples()
};

// The process-wide auditor every retrieval path feeds by default. Never
// destroyed, so exit-time exporters (--prom) can read it safely.
ErrorControlAuditor& GlobalAuditor();

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_AUDIT_H_
