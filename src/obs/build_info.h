// Build identity and process uptime for the Prometheus exposition.
//
// The conventional `*_build_info` pattern: one gauge fixed at 1 whose
// labels carry the version, git describe (injected by CMake via the
// MGARDP_GIT_DESCRIBE compile definition; "unknown" outside a git
// checkout), and compiler string — so dashboards can correlate a metric
// regression with the exact build that introduced it. The uptime counter
// measures from the first obs symbol load (static initialization), which
// for the CLI is process start for all practical purposes.

#ifndef MGARDP_OBS_BUILD_INFO_H_
#define MGARDP_OBS_BUILD_INFO_H_

namespace mgardp {
namespace obs {

class PromWriter;

const char* BuildVersion();
const char* BuildGitDescribe();
const char* BuildCompiler();
double ProcessUptimeSeconds();

// Appends:
//   mgardp_build_info{version=...,git=...,compiler=...} 1   gauge
//   mgardp_process_uptime_seconds                           counter
void AppendBuildInfoMetrics(PromWriter* writer);

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_BUILD_INFO_H_
