#include "obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/request_trace.h"
#include "obs/trace_export.h"

namespace mgardp {
namespace obs {

namespace {

// Span durations range from sub-microsecond (cache hits) to minutes
// (full refactors); 1 ns resolution at the bottom, ~40% relative error
// per bucket, top edge beyond 10^8 ms.
Histogram::Options StageHistogramOptions() {
  Histogram::Options o;
  o.min_value = 1e-6;  // 1 ns in ms
  o.growth = 1.4;
  o.num_buckets = 96;
  return o;
}

constexpr int kNumStripes = 64;

std::atomic<int> g_next_thread_id{0};

}  // namespace

int CurrentThreadId() {
  thread_local const int id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

StageStats::StageStats(const char* name, const char* category)
    : name_(name), category_(category), durations_ms_(StageHistogramOptions()) {}

struct Tracer::Stripe {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

Tracer::Tracer() : Tracer(Options()) {}

Tracer::Tracer(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  stripes_.reserve(kNumStripes);
  for (int s = 0; s < kNumStripes; ++s) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Tracer::~Tracer() = default;

StageStats* Tracer::GetOrCreateStage(const char* name, const char* category) {
  std::lock_guard<std::mutex> lock(stages_mu_);
  for (const auto& stage : stages_) {
    if (std::strcmp(stage->name(), name) == 0) {
      return stage.get();
    }
  }
  stages_.push_back(std::make_unique<StageStats>(name, category));
  return stages_.back().get();
}

Tracer::Stripe& Tracer::StripeForThisThread() const {
  return *stripes_[static_cast<std::size_t>(CurrentThreadId()) % kNumStripes];
}

void Tracer::RecordInterval(StageStats* stage,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  const unsigned mode = mode_.load(std::memory_order_relaxed);
  const double dur_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  stage->RecordMs(dur_us / 1000.0);
  TraceEvent ev;
  ev.name = stage->name();
  ev.category = stage->category();
  ev.ts_us = ToUs(start);
  ev.dur_us = dur_us;
  ev.tid = CurrentThreadId();
  // Request mode: the span also belongs to whichever request this thread
  // is currently serving (no-op when none is installed).
  if ((mode & kRequestMode) != 0u) {
    AppendSpanToCurrentRequest(ev);
  }
  if ((mode & kTimelineMode) == 0u) {
    return;
  }
  if (num_events_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_events) {
    num_events_.fetch_sub(1, std::memory_order_relaxed);
    events_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.events.push_back(ev);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> all;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    all.insert(all.end(), stripe->events.begin(), stripe->events.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.tid != b.tid ? a.tid < b.tid : a.ts_us < b.ts_us;
            });
  return all;
}

std::vector<Tracer::StageSummary> Tracer::Summary() const {
  std::vector<StageSummary> out;
  {
    std::lock_guard<std::mutex> lock(stages_mu_);
    for (const auto& stage : stages_) {
      const Histogram& h = stage->durations_ms();
      if (h.count() == 0) {
        continue;
      }
      StageSummary s;
      s.name = stage->name();
      s.category = stage->category();
      s.count = h.count();
      s.total_ms = h.sum();
      s.min_ms = h.min();
      s.max_ms = h.max();
      s.p50_ms = h.Quantile(0.50);
      s.p99_ms = h.Quantile(0.99);
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StageSummary& a, const StageSummary& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Tracer::SummaryJson() const {
  const std::vector<StageSummary> stages = Summary();
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const StageSummary& s = stages[i];
    if (i > 0) {
      os << ",";
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"count\":%llu,"
                  "\"total_ms\":%.6f,\"min_ms\":%.6f,\"max_ms\":%.6f,"
                  "\"p50_ms\":%.6f,\"p99_ms\":%.6f}",
                  s.name.c_str(), s.category.c_str(),
                  static_cast<unsigned long long>(s.count), s.total_ms,
                  s.min_ms, s.max_ms, s.p50_ms, s.p99_ms);
    os << buf;
  }
  os << "]";
  return os.str();
}

void Tracer::Clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->events.clear();
  }
  num_events_.store(0, std::memory_order_relaxed);
  events_dropped_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stages_mu_);
  for (const auto& stage : stages_) {
    stage->Reset();
  }
}

namespace {

// Written once before the atexit registration, read once at exit.
// Leaked so the handler never reads a destroyed string.
const std::string* g_exit_trace_path = nullptr;

void ExportGlobalTraceAtExit() {
  if (g_exit_trace_path == nullptr || g_exit_trace_path->empty()) {
    return;
  }
  const Status st = WriteChromeTrace(GlobalTracer(), *g_exit_trace_path);
  if (!st.ok()) {
    std::fprintf(stderr, "MGARDP_TRACE: %s\n", st.ToString().c_str());
  }
}

}  // namespace

Tracer& GlobalTracer() {
  // Intentionally leaked: exit-time exporters (and spans in static
  // destructors) must never observe a destroyed tracer.
  static Tracer* tracer = [] {
    Tracer* t = new Tracer();
    const char* env = std::getenv("MGARDP_TRACE");
    if (env != nullptr && env[0] != '\0') {
      t->set_enabled(true);
      g_exit_trace_path = new std::string(env);
      std::atexit(ExportGlobalTraceAtExit);
    }
    return t;
  }();
  return *tracer;
}

}  // namespace obs
}  // namespace mgardp
