#include "obs/request_trace.h"

#include <algorithm>
#include <utility>

#include "util/parallel.h"

namespace mgardp {
namespace obs {

namespace {

// The current request, one raw TLS pointer so the tracer's per-span hook
// is a plain load. Lifetime is guaranteed by the installing scope (which
// holds the shared_ptr) — pool workers only ever see a context whose
// owning Run() call is still blocked in the submitting scope.
thread_local RequestContext* t_current_request = nullptr;

void* CaptureCurrentRequest() { return t_current_request; }

void* ExchangeCurrentRequest(void* ctx) {
  RequestContext* prev = t_current_request;
  t_current_request = static_cast<RequestContext*>(ctx);
  return prev;
}

// Registered once, before any context can be installed: the pool carries
// the submitting thread's context to its workers for each stripe.
void RegisterPoolPropagator() {
  static const bool registered = [] {
    ThreadPool::ContextPropagator p;
    p.capture = &CaptureCurrentRequest;
    p.exchange = &ExchangeCurrentRequest;
    ThreadPool::SetContextPropagator(p);
    return true;
  }();
  (void)registered;
}

// splitmix64: turns the sequential allocation counter into well-mixed
// 64-bit ids, so prefixes of concurrently-minted ids never collide in the
// shortened forms humans grep for.
std::uint64_t MixTraceId(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return x == 0 ? 1 : x;  // 0 means "no trace id" everywhere
}

Histogram::Options RecorderLatencyOptions() {
  Histogram::Options o;
  o.min_value = 1e-3;
  o.growth = 1.25;
  o.num_buckets = 96;
  return o;
}

}  // namespace

RequestContext::RequestContext(std::uint64_t trace_id, std::string tenant,
                               double deadline_ms, std::string baggage,
                               std::size_t max_spans)
    : trace_id_(trace_id),
      tenant_(std::move(tenant)),
      deadline_ms_(deadline_ms),
      baggage_(std::move(baggage)),
      max_spans_(max_spans) {}

std::shared_ptr<RequestContext> RequestContext::Create(
    std::uint64_t trace_id, std::string tenant, double deadline_ms,
    std::string baggage, std::size_t max_spans) {
  // make_shared needs a public constructor; this pass-key-free shim keeps
  // the constructor private at the cost of one extra allocation.
  return std::shared_ptr<RequestContext>(
      new RequestContext(trace_id, std::move(tenant), deadline_ms,
                         std::move(baggage), max_spans));
}

void RequestContext::AppendSpan(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() + batch_spans_.size() >= max_spans_) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(event);
}

void RequestContext::AppendBatchSpan(
    const TraceEvent& event, std::vector<std::uint64_t> linked_trace_ids,
    std::size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() + batch_spans_.size() >= max_spans_) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  BatchLinkSpan span;
  span.event = event;
  span.linked_trace_ids = std::move(linked_trace_ids);
  span.rows = rows;
  batch_spans_.push_back(std::move(span));
}

std::vector<TraceEvent> RequestContext::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<BatchLinkSpan> RequestContext::batch_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_spans_;
}

ScopedRequestContext::ScopedRequestContext(
    std::shared_ptr<RequestContext> ctx)
    : ctx_(std::move(ctx)), prev_(t_current_request) {
  RegisterPoolPropagator();
  if (ctx_ != nullptr) {
    t_current_request = ctx_.get();
  }
}

ScopedRequestContext::~ScopedRequestContext() {
  if (ctx_ != nullptr) {
    t_current_request = prev_;
  }
}

RequestContext* ScopedRequestContext::Current() { return t_current_request; }

std::shared_ptr<RequestContext> ScopedRequestContext::CurrentShared() {
  RequestContext* ctx = t_current_request;
  return ctx == nullptr ? nullptr : ctx->shared_from_this();
}

std::uint64_t ScopedRequestContext::CurrentTraceId() {
  RequestContext* ctx = t_current_request;
  return ctx == nullptr ? 0 : ctx->trace_id();
}

void AppendSpanToCurrentRequest(const TraceEvent& event) {
  RequestContext* ctx = t_current_request;
  if (ctx != nullptr) {
    ctx->AppendSpan(event);
  }
}

RequestTraceRecorder::RequestTraceRecorder()
    : RequestTraceRecorder(Options()) {}

RequestTraceRecorder::RequestTraceRecorder(Options options)
    : options_(options), latency_ms_(RecorderLatencyOptions()) {}

std::shared_ptr<RequestContext> RequestTraceRecorder::StartRequest(
    std::string tenant, double deadline_ms, std::string baggage) {
  started_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id =
      MixTraceId(next_trace_id_.fetch_add(1, std::memory_order_relaxed));
  return RequestContext::Create(id, std::move(tenant), deadline_ms,
                                std::move(baggage),
                                options_.max_spans_per_request);
}

void RequestTraceRecorder::FinishRequest(
    const std::shared_ptr<RequestContext>& ctx, const Status& status,
    double latency_ms) {
  if (ctx == nullptr) {
    return;
  }
  finished_.fetch_add(1, std::memory_order_relaxed);

  // The slow rule compares against the p99 of PRIOR requests, then this
  // one's latency joins the estimate — the first slow request after warmup
  // is kept rather than moving the goalposts for itself.
  bool slow = false;
  if (options_.slow_threshold_ms > 0.0) {
    slow = latency_ms >= options_.slow_threshold_ms;
  } else if (latency_ms_.count() >= options_.min_latency_samples) {
    slow = latency_ms >= latency_ms_.Quantile(0.99);
  }
  latency_ms_.Record(latency_ms);

  const bool head =
      options_.head_sample_every > 0 &&
      head_counter_.fetch_add(1, std::memory_order_relaxed) %
              options_.head_sample_every ==
          0;

  Retained record;
  record.ctx = ctx;
  record.code = status.code();
  record.latency_ms = latency_ms;
  std::lock_guard<std::mutex> lock(mu_);
  if (status.code() == StatusCode::kOverloaded) {
    record.reason = "shed";
    ++tail_.kept_shed;
  } else if (status.code() == StatusCode::kDataLoss) {
    record.reason = "degraded";
    ++tail_.kept_degraded;
  } else if (!status.ok()) {
    record.reason = "error";
    ++tail_.kept_error;
  } else if (slow) {
    record.reason = "slow";
    ++tail_.kept_slow;
  } else if (head) {
    record.reason = "head";
    ++tail_.kept_head;
  } else {
    return;  // dropped: its durations already live in the stage histograms
  }
  Retain(std::move(record));
}

void RequestTraceRecorder::RecordShed(std::string tenant,
                                      std::string baggage) {
  started_.fetch_add(1, std::memory_order_relaxed);
  finished_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id =
      MixTraceId(next_trace_id_.fetch_add(1, std::memory_order_relaxed));
  Retained record;
  record.ctx = RequestContext::Create(id, std::move(tenant), 0.0,
                                      std::move(baggage),
                                      options_.max_spans_per_request);
  record.reason = "shed";
  record.code = StatusCode::kOverloaded;
  std::lock_guard<std::mutex> lock(mu_);
  ++tail_.kept_shed;
  Retain(std::move(record));
}

void RequestTraceRecorder::Retain(Retained record) {
  // Caller holds mu_.
  retained_.push_back(std::move(record));
  ++tail_.retained;
  while (retained_.size() > options_.max_retained) {
    retained_.pop_front();
    ++tail_.evicted;
  }
}

std::vector<RequestTraceRecorder::Retained> RequestTraceRecorder::retained()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {retained_.begin(), retained_.end()};
}

RequestTraceRecorder::Stats RequestTraceRecorder::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = tail_;
  }
  s.started = started_.load(std::memory_order_relaxed);
  s.finished = finished_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace obs
}  // namespace mgardp
