#include "obs/build_info.h"

#include <chrono>

#include "obs/prom_export.h"

#ifndef MGARDP_VERSION
#define MGARDP_VERSION "0.10.0"
#endif
#ifndef MGARDP_GIT_DESCRIBE
#define MGARDP_GIT_DESCRIBE "unknown"
#endif

namespace mgardp {
namespace obs {

namespace {

// Captured by static initialization, i.e. before main().
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

const char* BuildVersion() { return MGARDP_VERSION; }

const char* BuildGitDescribe() { return MGARDP_GIT_DESCRIBE; }

const char* BuildCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

double ProcessUptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

void AppendBuildInfoMetrics(PromWriter* writer) {
  writer->Family("mgardp_build_info", "gauge",
                 "Build identity; the value is always 1.");
  writer->Sample({{"version", BuildVersion()},
                  {"git", BuildGitDescribe()},
                  {"compiler", BuildCompiler()}},
                 1.0);
  writer->Family("mgardp_process_uptime_seconds", "counter",
                 "Seconds since process start.");
  writer->Sample({}, ProcessUptimeSeconds());
}

}  // namespace obs
}  // namespace mgardp
