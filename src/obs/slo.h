// Rolling-window SLO monitors with multi-window burn rates.
//
// An SloTracker owns one objective (e.g. "99.9% of tight-bound requests
// finish under 50 ms") and two rolling time windows — a fast one (default
// 5 minutes) and a slow one (default 1 hour) — implemented as a ring of
// fixed-width time buckets holding good/bad event counts. The burn rate
// over a window is the window's error rate divided by the objective's
// error budget (1 - objective): burn 1.0 means the budget is being spent
// exactly as fast as it accrues; burn 10 means a tenth of the window
// exhausts it. The standard multi-window alert rule — page only when BOTH
// windows burn hot, so a brief blip (fast window only) and a long-ago
// incident (slow window only) both stay quiet — is exposed as
// Snapshot::alerting against a configurable threshold.
//
// SloMonitor aggregates the service's objectives:
//   * one latency objective per error-bound tier (requests are routed to
//     the tier whose min_bound they meet; each tier has its own latency
//     threshold, so "loose bound, fast answer" and "tight bound, slower
//     answer" are separate promises);
//   * one violation-rate objective fed from the audit layer (an AuditSink
//     adapter counts ground-truthed bound violations; estimate-only
//     records carry no evidence either way and are skipped).
// Shed requests (kOverloaded) count against their tier's availability.
//
// Surfaces: SloMonitor::ToJson() (spliced into ServiceMetrics::
// SnapshotJson under "slo"), AppendSloMetrics (mgardp_slo_* Prometheus
// families), and serve-bench's end-of-run report.

#ifndef MGARDP_OBS_SLO_H_
#define MGARDP_OBS_SLO_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/audit.h"

namespace mgardp {
namespace obs {

class PromWriter;

class SloTracker {
 public:
  struct Options {
    double objective = 0.999;       // target good fraction
    double fast_window_s = 300.0;   // 5 m
    double slow_window_s = 3600.0;  // 1 h
    double bucket_s = 5.0;          // ring resolution
    double alert_burn = 1.0;        // alert when BOTH windows burn >= this
    // Injectable clock for tests; null uses steady_clock.
    std::function<std::chrono::steady_clock::time_point()> now;
  };

  struct Snapshot {
    double objective = 0.0;
    std::uint64_t total = 0;  // lifetime events
    std::uint64_t bad = 0;    // lifetime bad events
    std::uint64_t fast_total = 0;
    std::uint64_t fast_bad = 0;
    std::uint64_t slow_total = 0;
    std::uint64_t slow_bad = 0;
    double fast_error_rate = 0.0;
    double slow_error_rate = 0.0;
    double fast_burn = 0.0;  // error rate / (1 - objective)
    double slow_burn = 0.0;
    bool alerting = false;
  };

  SloTracker();
  explicit SloTracker(Options options);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  // Thread-safe: one short mutex hold (the ring advance is O(buckets
  // skipped), bounded by the ring size).
  void Record(bool good);

  Snapshot snapshot() const;
  void Reset();

 private:
  // Advances the ring to `tick`, zeroing skipped buckets. Caller holds mu_.
  void AdvanceTo(std::int64_t tick) const;
  std::int64_t TickNow() const;

  const Options options_;
  const std::size_t num_buckets_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  mutable std::vector<std::uint64_t> bucket_total_;
  mutable std::vector<std::uint64_t> bucket_bad_;
  mutable std::int64_t cursor_tick_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t bad_ = 0;
};

class SloMonitor {
 public:
  // Requests route to the first tier (in descending min_bound order) whose
  // min_bound the request's error bound meets; a request is "good" when it
  // succeeded within the tier's latency threshold.
  struct LatencyTier {
    std::string name;
    double min_bound = 0.0;
    double threshold_ms = 250.0;
  };

  struct Options {
    std::vector<LatencyTier> tiers;  // default: one "all" tier, 250 ms
    double latency_objective = 0.999;
    double violation_objective = 0.99;  // <=1% audited bound violations
    SloTracker::Options window;         // shared window/clock config
  };

  struct ObjectiveSnapshot {
    std::string name;  // "latency:<tier>" or "error_control"
    SloTracker::Snapshot slo;
  };

  SloMonitor();
  explicit SloMonitor(Options options);
  ~SloMonitor();

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  // A completed request: good iff it succeeded within its tier's latency
  // threshold.
  void OnRequest(double error_bound, bool ok, double latency_ms);
  // A request shed at admission; always bad for its tier.
  void OnShed(double error_bound);

  // The audit feed: ground-truthed records count violation vs satisfied;
  // estimate-only records are skipped. Exposed directly for tests; the
  // sink below is what registers with an ErrorControlAuditor.
  void OnAuditRecord(const AuditRecord& record);
  // Non-owning adapter, valid for the monitor's lifetime. Register with
  // auditor.AddSink(monitor.audit_sink()) and RemoveSink before the
  // monitor dies.
  AuditSink* audit_sink() { return &sink_; }

  bool has_data() const;
  std::vector<ObjectiveSnapshot> snapshot() const;
  // {"objectives":[{...}]}; stable order: latency tiers then error_control.
  std::string ToJson() const;
  void Reset();

 private:
  class Sink : public AuditSink {
   public:
    explicit Sink(SloMonitor* monitor) : monitor_(monitor) {}
    void OnRecord(const AuditRecord& record) override {
      monitor_->OnAuditRecord(record);
    }

   private:
    SloMonitor* monitor_;
  };

  std::size_t TierFor(double error_bound) const;

  Options options_;  // tiers sorted by descending min_bound
  std::vector<std::unique_ptr<SloTracker>> tier_trackers_;
  std::unique_ptr<SloTracker> violation_tracker_;
  Sink sink_;
};

// Renders `monitor` as mgardp_slo_* families:
//   mgardp_slo_objective{slo=...}                       gauge
//   mgardp_slo_events_total{slo=...}                    counter
//   mgardp_slo_bad_events_total{slo=...}                counter
//   mgardp_slo_error_rate{slo=...,window="fast"|"slow"} gauge
//   mgardp_slo_burn_rate{slo=...,window="fast"|"slow"}  gauge
//   mgardp_slo_alerting{slo=...}                        gauge
void AppendSloMetrics(const SloMonitor& monitor, PromWriter* writer);

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_SLO_H_
