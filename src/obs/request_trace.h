// Request-scoped tracing: a per-request context propagated via TLS, a
// bounded per-request flight recorder, and a tail-based sampler that
// decides AFTER completion whether a request's full span record is worth
// keeping.
//
// A RequestContext is minted at scheduler admission (64-bit trace id,
// tenant, deadline, free-form baggage) and installed on the processing
// thread with ScopedRequestContext. The ThreadPool propagates the ambient
// context to its workers (util/parallel's context propagator), so spans
// opened inside ParallelFor bodies land in the right request. The
// InferenceBatcher captures each joiner's context at SubmitAsync and, when
// the shared forward pass executes (possibly on another request's thread),
// appends a batch span carrying *span links* — the trace ids of every
// joiner — to each joiner's recorder, so one coalesced GEMM is
// attributable to all of the requests that rode it.
//
// Span capture piggybacks on the PR-4 tracer: when the tracer's request
// mode is on, Tracer::RecordInterval forwards every completed span to the
// calling thread's current context (bounded buffer, drops counted). The
// disabled hot path is unchanged: one relaxed load in Span, nothing else.
//
// Tail sampling: RequestTraceRecorder::FinishRequest keeps the full record
// only when the request was shed (kOverloaded), degraded (kDataLoss),
// errored, slow (above an explicit threshold, or above the rolling p99 of
// the recorder's own latency histogram once it has enough samples), or
// head-sampled 1-in-N. Everything else has already folded into the global
// per-stage histograms and is simply dropped. Retained records export as
// per-request Chrome-trace lanes (trace_export.h) and feed the
// `mgardp trace-report` subcommand.

#ifndef MGARDP_OBS_REQUEST_TRACE_H_
#define MGARDP_OBS_REQUEST_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/tracer.h"
#include "util/histogram.h"
#include "util/status.h"

namespace mgardp {
namespace obs {

// A batch span: one shared piece of work (e.g. a coalesced inference
// forward pass) linked to every request that contributed rows to it.
struct BatchLinkSpan {
  TraceEvent event;
  std::vector<std::uint64_t> linked_trace_ids;
  std::size_t rows = 0;
};

// Per-request identity plus the flight-recorder buffer. Created via
// Create() (always heap-allocated behind a shared_ptr, so the batcher can
// retain joiners past the submitting scope via shared_from_this).
class RequestContext : public std::enable_shared_from_this<RequestContext> {
 public:
  static std::shared_ptr<RequestContext> Create(std::uint64_t trace_id,
                                                std::string tenant,
                                                double deadline_ms,
                                                std::string baggage,
                                                std::size_t max_spans);

  std::uint64_t trace_id() const { return trace_id_; }
  const std::string& tenant() const { return tenant_; }
  double deadline_ms() const { return deadline_ms_; }
  const std::string& baggage() const { return baggage_; }

  // Thread-safe appends; past `max_spans` the span is dropped and counted
  // (batch spans share the same budget).
  void AppendSpan(const TraceEvent& event);
  void AppendBatchSpan(const TraceEvent& event,
                       std::vector<std::uint64_t> linked_trace_ids,
                       std::size_t rows);

  std::vector<TraceEvent> spans() const;
  std::vector<BatchLinkSpan> batch_spans() const;
  std::uint64_t spans_dropped() const {
    return spans_dropped_.load(std::memory_order_relaxed);
  }

 private:
  RequestContext(std::uint64_t trace_id, std::string tenant,
                 double deadline_ms, std::string baggage,
                 std::size_t max_spans);

  const std::uint64_t trace_id_;
  const std::string tenant_;
  const double deadline_ms_;
  const std::string baggage_;
  const std::size_t max_spans_;

  mutable std::mutex mu_;
  std::vector<TraceEvent> spans_;
  std::vector<BatchLinkSpan> batch_spans_;
  std::atomic<std::uint64_t> spans_dropped_{0};
};

// Installs `ctx` as the calling thread's current request for the scope's
// lifetime (restoring the previous one on exit; scopes nest). A null ctx
// is a no-op scope. The raw Current() pointer is what the tracer and the
// pool propagator read; CurrentShared() is for code that must retain the
// context past the scope (the batcher's joiner list).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(std::shared_ptr<RequestContext> ctx);
  ~ScopedRequestContext();

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

  static RequestContext* Current();
  static std::shared_ptr<RequestContext> CurrentShared();
  // 0 when no context is installed.
  static std::uint64_t CurrentTraceId();

 private:
  std::shared_ptr<RequestContext> ctx_;
  RequestContext* prev_;
};

// Tracer::RecordInterval's forwarding hook: appends `event` to the calling
// thread's current request, if any. Only called when request mode is on.
void AppendSpanToCurrentRequest(const TraceEvent& event);

// The tail-sampling flight recorder. Thread-safe; one per serving loop.
class RequestTraceRecorder {
 public:
  struct Options {
    // Flight-recorder buffer per request; spans beyond it drop (counted).
    std::size_t max_spans_per_request = 256;
    // Retained full records; oldest evicted first (counted).
    std::size_t max_retained = 256;
    // Explicit slow threshold. 0 selects the rolling-p99 rule: a request
    // is slow when it exceeds the recorder's own latency p99, once
    // min_latency_samples finished requests have been observed.
    double slow_threshold_ms = 0.0;
    std::uint64_t min_latency_samples = 64;
    // Keep 1-in-N regardless of outcome; 0 disables head sampling.
    std::uint64_t head_sample_every = 0;
  };

  struct Stats {
    std::uint64_t started = 0;
    std::uint64_t finished = 0;
    std::uint64_t retained = 0;
    std::uint64_t evicted = 0;
    std::uint64_t kept_slow = 0;
    std::uint64_t kept_error = 0;
    std::uint64_t kept_degraded = 0;
    std::uint64_t kept_shed = 0;
    std::uint64_t kept_head = 0;
  };

  // One retained request: the full context plus its outcome.
  struct Retained {
    std::shared_ptr<RequestContext> ctx;
    const char* reason = "";  // "shed"|"degraded"|"error"|"slow"|"head"
    StatusCode code = StatusCode::kOk;
    double latency_ms = 0.0;
  };

  RequestTraceRecorder();
  explicit RequestTraceRecorder(Options options);

  RequestTraceRecorder(const RequestTraceRecorder&) = delete;
  RequestTraceRecorder& operator=(const RequestTraceRecorder&) = delete;

  // Mints a context for an admitted request.
  std::shared_ptr<RequestContext> StartRequest(std::string tenant,
                                               double deadline_ms,
                                               std::string baggage);

  // Applies the tail-sampling policy. Null ctx is ignored. `status` is the
  // request's final status; latency feeds the rolling-p99 estimate whether
  // or not the record is kept.
  void FinishRequest(const std::shared_ptr<RequestContext>& ctx,
                     const Status& status, double latency_ms);

  // A request shed at admission (kOverloaded) never executes, but its
  // rejection is exactly the kind of event the tail sampler must keep:
  // this mints a minimal context and retains it immediately.
  void RecordShed(std::string tenant, std::string baggage);

  std::vector<Retained> retained() const;
  Stats stats() const;

 private:
  void Retain(Retained record);

  const Options options_;
  Histogram latency_ms_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> head_counter_{0};
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> finished_{0};

  mutable std::mutex mu_;
  std::deque<Retained> retained_;
  Stats tail_;  // retained/evicted/kept_* counters, guarded by mu_
};

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_REQUEST_TRACE_H_
