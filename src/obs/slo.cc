#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/prom_export.h"
#include "util/logging.h"

namespace mgardp {
namespace obs {

namespace {

std::size_t RingBuckets(const SloTracker::Options& o) {
  // Enough buckets to cover the slow window plus the in-progress bucket.
  const double span = std::max(o.slow_window_s, o.fast_window_s);
  return static_cast<std::size_t>(std::ceil(span / o.bucket_s)) + 1;
}

// Sums a window of `ticks` buckets ending at the cursor (inclusive).
void SumWindow(const std::vector<std::uint64_t>& total,
               const std::vector<std::uint64_t>& bad,
               std::int64_t cursor_tick, std::int64_t ticks,
               std::uint64_t* out_total, std::uint64_t* out_bad) {
  const std::int64_t n = static_cast<std::int64_t>(total.size());
  *out_total = 0;
  *out_bad = 0;
  for (std::int64_t t = 0; t < std::min(ticks, n); ++t) {
    const std::int64_t tick = cursor_tick - t;
    if (tick < 0) {
      break;
    }
    const std::size_t slot = static_cast<std::size_t>(tick % n);
    *out_total += total[slot];
    *out_bad += bad[slot];
  }
}

double Burn(std::uint64_t total, std::uint64_t bad, double objective,
            double* error_rate) {
  *error_rate =
      total == 0 ? 0.0
                 : static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - objective;
  return budget <= 0.0 ? (*error_rate > 0.0 ? INFINITY : 0.0)
                       : *error_rate / budget;
}

}  // namespace

SloTracker::SloTracker() : SloTracker(Options()) {}

SloTracker::SloTracker(Options options)
    : options_(std::move(options)),
      num_buckets_(RingBuckets(options_)),
      epoch_(options_.now ? options_.now()
                          : std::chrono::steady_clock::now()),
      bucket_total_(num_buckets_, 0),
      bucket_bad_(num_buckets_, 0) {
  MGARDP_CHECK(options_.bucket_s > 0.0);
}

std::int64_t SloTracker::TickNow() const {
  const auto now =
      options_.now ? options_.now() : std::chrono::steady_clock::now();
  const double elapsed_s =
      std::chrono::duration<double>(now - epoch_).count();
  return static_cast<std::int64_t>(elapsed_s / options_.bucket_s);
}

void SloTracker::AdvanceTo(std::int64_t tick) const {
  const std::int64_t n = static_cast<std::int64_t>(num_buckets_);
  if (tick <= cursor_tick_) {
    return;  // steady_clock never goes backwards; manual clocks might
  }
  // Zero every bucket the cursor skips; a jump past a full ring wipe
  // clears everything in one bounded pass.
  const std::int64_t steps = std::min(tick - cursor_tick_, n);
  for (std::int64_t s = 1; s <= steps; ++s) {
    const std::size_t slot =
        static_cast<std::size_t>((cursor_tick_ + s) % n);
    bucket_total_[slot] = 0;
    bucket_bad_[slot] = 0;
  }
  cursor_tick_ = tick;
}

void SloTracker::Record(bool good) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceTo(TickNow());
  const std::size_t slot =
      static_cast<std::size_t>(cursor_tick_ % static_cast<std::int64_t>(
                                                  num_buckets_));
  ++bucket_total_[slot];
  ++total_;
  if (!good) {
    ++bucket_bad_[slot];
    ++bad_;
  }
}

SloTracker::Snapshot SloTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceTo(TickNow());
  Snapshot s;
  s.objective = options_.objective;
  s.total = total_;
  s.bad = bad_;
  const std::int64_t fast_ticks = static_cast<std::int64_t>(
      std::ceil(options_.fast_window_s / options_.bucket_s));
  const std::int64_t slow_ticks = static_cast<std::int64_t>(
      std::ceil(options_.slow_window_s / options_.bucket_s));
  SumWindow(bucket_total_, bucket_bad_, cursor_tick_, fast_ticks,
            &s.fast_total, &s.fast_bad);
  SumWindow(bucket_total_, bucket_bad_, cursor_tick_, slow_ticks,
            &s.slow_total, &s.slow_bad);
  s.fast_burn =
      Burn(s.fast_total, s.fast_bad, s.objective, &s.fast_error_rate);
  s.slow_burn =
      Burn(s.slow_total, s.slow_bad, s.objective, &s.slow_error_rate);
  s.alerting = s.fast_burn >= options_.alert_burn &&
               s.slow_burn >= options_.alert_burn &&
               (s.fast_bad > 0 || s.slow_bad > 0);
  return s;
}

void SloTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(bucket_total_.begin(), bucket_total_.end(), 0);
  std::fill(bucket_bad_.begin(), bucket_bad_.end(), 0);
  total_ = 0;
  bad_ = 0;
}

SloMonitor::SloMonitor() : SloMonitor(Options()) {}

SloMonitor::SloMonitor(Options options)
    : options_(std::move(options)), sink_(this) {
  if (options_.tiers.empty()) {
    options_.tiers.push_back({"all", 0.0, 250.0});
  }
  std::sort(options_.tiers.begin(), options_.tiers.end(),
            [](const LatencyTier& a, const LatencyTier& b) {
              return a.min_bound > b.min_bound;
            });
  for (std::size_t i = 0; i < options_.tiers.size(); ++i) {
    SloTracker::Options w = options_.window;
    w.objective = options_.latency_objective;
    tier_trackers_.push_back(std::make_unique<SloTracker>(w));
  }
  SloTracker::Options w = options_.window;
  w.objective = options_.violation_objective;
  violation_tracker_ = std::make_unique<SloTracker>(w);
}

SloMonitor::~SloMonitor() = default;

std::size_t SloMonitor::TierFor(double error_bound) const {
  // Tiers are sorted by descending min_bound; the last tier (smallest
  // min_bound, typically 0) catches everything.
  for (std::size_t i = 0; i + 1 < options_.tiers.size(); ++i) {
    if (error_bound >= options_.tiers[i].min_bound) {
      return i;
    }
  }
  return options_.tiers.size() - 1;
}

void SloMonitor::OnRequest(double error_bound, bool ok, double latency_ms) {
  const std::size_t tier = TierFor(error_bound);
  tier_trackers_[tier]->Record(
      ok && latency_ms <= options_.tiers[tier].threshold_ms);
}

void SloMonitor::OnShed(double error_bound) {
  tier_trackers_[TierFor(error_bound)]->Record(false);
}

void SloMonitor::OnAuditRecord(const AuditRecord& record) {
  if (!record.has_actual()) {
    return;  // no evidence either way
  }
  violation_tracker_->Record(record.actual_error <=
                             record.requested_tolerance);
}

bool SloMonitor::has_data() const {
  for (const auto& t : tier_trackers_) {
    if (t->snapshot().total > 0) {
      return true;
    }
  }
  return violation_tracker_->snapshot().total > 0;
}

std::vector<SloMonitor::ObjectiveSnapshot> SloMonitor::snapshot() const {
  std::vector<ObjectiveSnapshot> out;
  for (std::size_t i = 0; i < options_.tiers.size(); ++i) {
    out.push_back(
        {"latency:" + options_.tiers[i].name, tier_trackers_[i]->snapshot()});
  }
  out.push_back({"error_control", violation_tracker_->snapshot()});
  return out;
}

std::string SloMonitor::ToJson() const {
  std::ostringstream os;
  os << "{\"objectives\":[";
  const std::vector<ObjectiveSnapshot> objectives = snapshot();
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    const SloTracker::Snapshot& s = objectives[i].slo;
    if (i > 0) {
      os << ",";
    }
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"objective\":%.6f,\"total\":%llu,\"bad\":%llu,"
        "\"fast_error_rate\":%.6f,\"slow_error_rate\":%.6f,"
        "\"fast_burn\":%.3f,\"slow_burn\":%.3f,\"alerting\":%s}",
        objectives[i].name.c_str(), s.objective,
        static_cast<unsigned long long>(s.total),
        static_cast<unsigned long long>(s.bad), s.fast_error_rate,
        s.slow_error_rate, std::isinf(s.fast_burn) ? 1e9 : s.fast_burn,
        std::isinf(s.slow_burn) ? 1e9 : s.slow_burn,
        s.alerting ? "true" : "false");
    os << buf;
  }
  os << "]}";
  return os.str();
}

void SloMonitor::Reset() {
  for (const auto& t : tier_trackers_) {
    t->Reset();
  }
  violation_tracker_->Reset();
}

void AppendSloMetrics(const SloMonitor& monitor, PromWriter* writer) {
  const std::vector<SloMonitor::ObjectiveSnapshot> objectives =
      monitor.snapshot();
  writer->Family("mgardp_slo_objective", "gauge",
                 "Target good fraction per objective.");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}}, o.slo.objective);
  }
  writer->Family("mgardp_slo_events_total", "counter",
                 "Lifetime events per objective.");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}}, static_cast<double>(o.slo.total));
  }
  writer->Family("mgardp_slo_bad_events_total", "counter",
                 "Lifetime budget-consuming events per objective.");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}}, static_cast<double>(o.slo.bad));
  }
  writer->Family("mgardp_slo_error_rate", "gauge",
                 "Windowed bad-event fraction per objective.");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}, {"window", "fast"}},
                   o.slo.fast_error_rate);
    writer->Sample({{"slo", o.name}, {"window", "slow"}},
                   o.slo.slow_error_rate);
  }
  writer->Family("mgardp_slo_burn_rate", "gauge",
                 "Windowed error-budget burn rate (1.0 = budget spent "
                 "exactly as fast as it accrues).");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}, {"window", "fast"}}, o.slo.fast_burn);
    writer->Sample({{"slo", o.name}, {"window", "slow"}}, o.slo.slow_burn);
  }
  writer->Family("mgardp_slo_alerting", "gauge",
                 "1 when both windows burn beyond the alert threshold.");
  for (const auto& o : objectives) {
    writer->Sample({{"slo", o.name}}, o.slo.alerting ? 1.0 : 0.0);
  }
}

}  // namespace obs
}  // namespace mgardp
