#include "obs/trace_export.h"

#include <cstdio>
#include <sstream>

#include "obs/tracer.h"
#include "util/io.h"

namespace mgardp {
namespace obs {

namespace {

// Stage names are string literals under our control, but escape anyway so
// a stray quote or backslash can never produce an unloadable trace.
void AppendEscaped(std::ostringstream* os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      *os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *os << buf;
    } else {
      *os << c;
    }
  }
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > 0) {
      os << ",\n";
    }
    os << "{\"name\":\"";
    AppendEscaped(&os, ev.name);
    os << "\",\"cat\":\"";
    AppendEscaped(&os, ev.category);
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid;
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}", ev.ts_us,
                  ev.dur_us);
    os << buf;
  }
  os << "]\n";
  return os.str();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteFile(path, ToChromeTraceJson(tracer.events()));
}

}  // namespace obs
}  // namespace mgardp
