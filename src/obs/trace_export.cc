#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/tracer.h"
#include "util/io.h"
#include "util/logging.h"

namespace mgardp {
namespace obs {

namespace {

// Stage names are string literals under our control, but escape anyway so
// a stray quote or backslash can never produce an unloadable trace.
void AppendEscaped(std::ostringstream* os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      *os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *os << buf;
    } else {
      *os << c;
    }
  }
}

std::string HexTraceId(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// One "X" span line for a request lane (no trailing separator).
void AppendLaneSpan(std::ostringstream* os, int pid, const TraceEvent& ev,
                    const std::string& extra_args) {
  *os << "{\"name\":\"";
  AppendEscaped(os, ev.name);
  *os << "\",\"cat\":\"";
  AppendEscaped(os, ev.category);
  *os << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << ev.tid;
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", ev.ts_us,
                ev.dur_us);
  *os << buf;
  if (!extra_args.empty()) {
    *os << ",\"args\":{" << extra_args << "}";
  }
  *os << "}";
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (i > 0) {
      os << ",\n";
    }
    os << "{\"name\":\"";
    AppendEscaped(&os, ev.name);
    os << "\",\"cat\":\"";
    AppendEscaped(&os, ev.category);
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid;
    char buf[96];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}", ev.ts_us,
                  ev.dur_us);
    os << buf;
  }
  os << "]\n";
  return os.str();
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteFileAtomic(path, ToChromeTraceJson(tracer.events()));
}

std::string ToChromeRequestLanesJson(
    const std::vector<RequestTraceRecorder::Retained>& retained) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (std::size_t i = 0; i < retained.size(); ++i) {
    const RequestTraceRecorder::Retained& r = retained[i];
    if (r.ctx == nullptr) {
      continue;
    }
    const int pid = static_cast<int>(i) + 1;
    const std::string trace = HexTraceId(r.ctx->trace_id());
    if (!first) {
      os << ",\n";
    }
    first = false;
    // The lane's metadata event doubles as the machine-readable request
    // summary: trace-report parses these args back out line by line.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"name\":\"req " << trace << " ";
    AppendEscaped(&os, r.ctx->tenant().c_str());
    os << " [" << r.reason << "]\",\"trace\":\"" << trace
       << "\",\"tenant\":\"";
    AppendEscaped(&os, r.ctx->tenant().c_str());
    os << "\",\"reason\":\"" << r.reason << "\",\"status\":\"";
    AppendEscaped(&os, StatusCodeToString(r.code));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\",\"latency_ms\":%.3f,\"deadline_ms\":%.3f,"
                  "\"spans_dropped\":%llu",
                  r.latency_ms, r.ctx->deadline_ms(),
                  static_cast<unsigned long long>(r.ctx->spans_dropped()));
    os << buf;
    if (!r.ctx->baggage().empty()) {
      os << ",\"baggage\":\"";
      AppendEscaped(&os, r.ctx->baggage().c_str());
      os << "\"";
    }
    os << "}}";

    std::vector<TraceEvent> spans = r.ctx->spans();
    std::sort(spans.begin(), spans.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.tid != b.tid ? a.tid < b.tid : a.ts_us < b.ts_us;
              });
    for (const TraceEvent& ev : spans) {
      os << ",\n";
      AppendLaneSpan(&os, pid, ev, "");
    }
    for (const BatchLinkSpan& batch : r.ctx->batch_spans()) {
      std::ostringstream args;
      args << "\"links\":\"";
      for (std::size_t l = 0; l < batch.linked_trace_ids.size(); ++l) {
        if (l > 0) {
          args << ",";
        }
        args << HexTraceId(batch.linked_trace_ids[l]);
      }
      args << "\",\"rows\":" << batch.rows;
      os << ",\n";
      AppendLaneSpan(&os, pid, batch.event, args.str());
    }
  }
  os << "]\n";
  return os.str();
}

Status WriteRequestTraces(const RequestTraceRecorder& recorder,
                          const std::string& path) {
  return WriteFileAtomic(path, ToChromeRequestLanesJson(recorder.retained()));
}

PeriodicTraceFlusher::PeriodicTraceFlusher(const Tracer* tracer,
                                           std::string path)
    : PeriodicTraceFlusher(tracer, std::move(path), Options()) {}

PeriodicTraceFlusher::PeriodicTraceFlusher(const Tracer* tracer,
                                           std::string path, Options options)
    : tracer_(tracer), path_(std::move(path)), options_(options) {
  MGARDP_CHECK(tracer_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

PeriodicTraceFlusher::~PeriodicTraceFlusher() {
  const Status st = Stop();
  (void)st;
}

void PeriodicTraceFlusher::Loop() {
  auto last_flush = std::chrono::steady_clock::now();
  std::uint64_t events_at_last_flush = tracer_->num_events();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, options_.poll, [this] { return stop_; })) {
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t events = tracer_->num_events();
    const bool interval_due = now - last_flush >= options_.interval;
    const bool size_due =
        options_.flush_event_delta > 0 &&
        events - events_at_last_flush >= options_.flush_event_delta;
    if (!interval_due && !size_due) {
      continue;
    }
    lock.unlock();
    const Status st = FlushOnce();
    lock.lock();
    last_flush = now;
    events_at_last_flush = events;
    ++flushes_;
    if (!st.ok() && last_error_.ok()) {
      last_error_ = st;
    }
  }
}

Status PeriodicTraceFlusher::FlushOnce() {
  return WriteChromeTrace(*tracer_, path_);
}

Status PeriodicTraceFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return last_error_;
    }
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  const Status st = FlushOnce();
  std::lock_guard<std::mutex> lock(mu_);
  ++flushes_;
  if (!st.ok() && last_error_.ok()) {
    last_error_ = st;
  }
  return last_error_;
}

std::uint64_t PeriodicTraceFlusher::flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

Status PeriodicTraceFlusher::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace obs
}  // namespace mgardp
