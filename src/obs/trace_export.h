// Chrome trace ("trace event format") export of a Tracer's timeline and
// of tail-sampled per-request flight records.
//
// The output is the JSON-array form of the format: one complete ("ph":
// "X") event per span with microsecond ts/dur, which chrome://tracing
// and Perfetto load directly. Nesting needs no explicit encoding — the
// viewers stack events on the same tid by ts/dur containment, which the
// RAII Span discipline guarantees.
//
// Request lanes: ToChromeRequestLanesJson gives every retained request its
// own pid, named by a process_name metadata event carrying the trace id,
// tenant, retention reason, final status, and latency as args — so one
// file shows each sampled request as its own lane, and `mgardp
// trace-report` re-reads the same args (the writer emits exactly one event
// per line to keep that parse trivial). Batch spans carry their span links
// (the trace ids of every request that joined the shared work) in
// args.links.
//
// PeriodicTraceFlusher mirrors PeriodicPromFlusher: long-running runs get
// their timeline rewritten atomically (temp + rename) on an interval AND
// whenever enough new events accumulated, instead of only at exit — a
// crash mid-bench loses at most one flush window of spans.

#ifndef MGARDP_OBS_TRACE_EXPORT_H_
#define MGARDP_OBS_TRACE_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/request_trace.h"
#include "util/status.h"

namespace mgardp {
namespace obs {

class Tracer;
struct TraceEvent;

// Renders events as a Chrome trace JSON array ("[]" when empty).
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

// Snapshots `tracer`'s timeline and writes it to `path` (atomically, so a
// flush racing a reader never exposes a torn file).
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

// Renders retained flight-recorder records as per-request Chrome lanes,
// one event object per line (see the header comment).
std::string ToChromeRequestLanesJson(
    const std::vector<RequestTraceRecorder::Retained>& retained);

// Snapshots `recorder`'s retained records and writes the lanes to `path`.
Status WriteRequestTraces(const RequestTraceRecorder& recorder,
                          const std::string& path);

// Background flush for the Chrome-trace export: rewrites `path` every
// `interval`, or as soon as `flush_event_delta` new timeline events have
// accumulated since the last flush (checked every `poll`), whichever
// comes first. Stop() (and the destructor) performs one final flush.
class PeriodicTraceFlusher {
 public:
  struct Options {
    std::chrono::milliseconds interval{1000};
    std::uint64_t flush_event_delta = 4096;
    std::chrono::milliseconds poll{50};
  };

  PeriodicTraceFlusher(const Tracer* tracer, std::string path);
  PeriodicTraceFlusher(const Tracer* tracer, std::string path,
                       Options options);
  ~PeriodicTraceFlusher();

  PeriodicTraceFlusher(const PeriodicTraceFlusher&) = delete;
  PeriodicTraceFlusher& operator=(const PeriodicTraceFlusher&) = delete;

  // Idempotent: joins the thread and flushes one final time. Returns the
  // first error observed (OK if none).
  Status Stop();

  std::uint64_t flushes() const;
  Status last_error() const;

 private:
  void Loop();
  Status FlushOnce();

  const Tracer* tracer_;
  const std::string path_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::uint64_t flushes_ = 0;
  Status last_error_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_TRACE_EXPORT_H_
