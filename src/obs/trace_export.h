// Chrome trace ("trace event format") export of a Tracer's timeline.
//
// The output is the JSON-array form of the format: one complete ("ph":
// "X") event per span with microsecond ts/dur, which chrome://tracing
// and Perfetto load directly. Nesting needs no explicit encoding — the
// viewers stack events on the same tid by ts/dur containment, which the
// RAII Span discipline guarantees.

#ifndef MGARDP_OBS_TRACE_EXPORT_H_
#define MGARDP_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace mgardp {
namespace obs {

class Tracer;
struct TraceEvent;

// Renders events as a Chrome trace JSON array ("[]" when empty).
std::string ToChromeTraceJson(const std::vector<TraceEvent>& events);

// Snapshots `tracer`'s timeline and writes it to `path`.
Status WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace obs
}  // namespace mgardp

#endif  // MGARDP_OBS_TRACE_EXPORT_H_
