// Low-overhead tracing and per-stage profiling for the whole pipeline.
//
// Every hot path (refactor, reconstruct, session refine, cache fill,
// scheduler dispatch, DNN train/forward) opens a scoped Span around its
// stages. When tracing is DISABLED — the default — a span is one relaxed
// atomic load and two register writes: no allocation, no locks, no clock
// reads, so instrumentation can stay compiled into production hot paths
// (bench/micro/micro_obs.cc measures the disabled path against a bare
// loop). When ENABLED, a span reads the steady clock twice and appends one
// fixed-size event to a striped buffer (one mutex per stripe, threads
// hash to stripes, so concurrent spans almost never contend) and records
// its duration into the stage's wait-free Histogram.
//
// Two consumers read the collected data:
//   * trace_export.h turns the event buffer into Chrome trace JSON
//     (chrome://tracing / Perfetto load it directly);
//   * Summary()/SummaryJson() aggregate per-stage count/total/min/max and
//     quantiles, which ServiceMetrics::SnapshotJson merges into the
//     service's JSON snapshot.
//
// Stage identity: call sites register a stage once (static-local in the
// MGARDP_TRACE_SPAN macro) and hold the returned StageStats pointer, so
// the per-span cost never includes a name lookup. Names and categories
// must be string literals (or otherwise outlive the tracer); they are
// stored by pointer.
//
// The process-wide tracer is GlobalTracer(). Setting the MGARDP_TRACE
// environment variable to a file path enables it at startup and writes a
// Chrome trace there at process exit; the mgardp CLI's --trace=FILE flag
// does the same explicitly.

#ifndef MGARDP_OBS_TRACER_H_
#define MGARDP_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace mgardp {
namespace obs {

// One completed span, ready for Chrome trace export. Timestamps are
// microseconds since the tracer's epoch (its construction).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;  // dense process-wide thread number, stable per thread
};

// Aggregate profile of one stage (all spans sharing a name), built on the
// wait-free Histogram so concurrent span ends never serialize.
class StageStats {
 public:
  StageStats(const char* name, const char* category);

  const char* name() const { return name_; }
  const char* category() const { return category_; }
  const Histogram& durations_ms() const { return durations_ms_; }
  void RecordMs(double ms) { durations_ms_.Record(ms); }
  void Reset() { durations_ms_.Reset(); }

 private:
  const char* name_;
  const char* category_;
  Histogram durations_ms_;
};

class Tracer {
 public:
  struct Options {
    // Events kept across all stripes; spans beyond the cap still profile
    // into their stage histogram but drop their timeline event.
    std::size_t max_events = 1u << 20;
  };

  Tracer();
  explicit Tracer(Options options);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Two independent capture modes share the one enable word, so the
  // disabled hot path stays a single relaxed load no matter how many
  // consumers exist:
  //   * timeline mode (set_enabled / --trace): spans append to the global
  //     striped event buffer for whole-process Chrome export;
  //   * request mode (set_request_tracing / --trace-requests): spans
  //     forward to the calling thread's current RequestContext flight
  //     recorder (obs/request_trace.h).
  // Stage histograms record in either mode.
  static constexpr unsigned kTimelineMode = 1u;
  static constexpr unsigned kRequestMode = 2u;

  // The one branch on the disabled hot path: true when ANY mode is on.
  bool enabled() const {
    return mode_.load(std::memory_order_relaxed) != 0u;
  }
  bool timeline_enabled() const {
    return (mode_.load(std::memory_order_relaxed) & kTimelineMode) != 0u;
  }
  bool request_tracing_enabled() const {
    return (mode_.load(std::memory_order_relaxed) & kRequestMode) != 0u;
  }
  void set_enabled(bool on) {
    if (on) {
      mode_.fetch_or(kTimelineMode, std::memory_order_relaxed);
    } else {
      mode_.fetch_and(~kTimelineMode, std::memory_order_relaxed);
    }
  }
  void set_request_tracing(bool on) {
    if (on) {
      mode_.fetch_or(kRequestMode, std::memory_order_relaxed);
    } else {
      mode_.fetch_and(~kRequestMode, std::memory_order_relaxed);
    }
  }

  // Registers (or finds) the stage named `name`. Idempotent and
  // thread-safe; call once per site and cache the pointer. `name` and
  // `category` must outlive the tracer (string literals).
  StageStats* GetOrCreateStage(const char* name, const char* category);

  // Records a completed interval: appends a timeline event (unless the
  // event cap is hit) and profiles the duration into `stage`. Used by
  // Span on destruction and directly for externally-timed intervals
  // (e.g. scheduler queue wait, whose start predates the worker thread).
  void RecordInterval(StageStats* stage,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end);

  // Snapshot of the timeline, ordered by (tid, start time). Safe to call
  // while spans are still being recorded.
  std::vector<TraceEvent> events() const;
  std::uint64_t events_dropped() const {
    return events_dropped_.load(std::memory_order_relaxed);
  }
  // Timeline events currently buffered (kept events only, not drops);
  // the periodic trace flusher uses the delta as its size trigger.
  std::uint64_t num_events() const {
    return num_events_.load(std::memory_order_relaxed);
  }

  // Microseconds since the tracer's epoch; lets externally-timed spans
  // (the batcher's shared forward pass) stamp events on the same axis.
  double ToMicros(std::chrono::steady_clock::time_point t) const {
    return ToUs(t);
  }

  struct StageSummary {
    std::string name;
    std::string category;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
  };

  // Per-stage aggregates, sorted by name; stages that never recorded a
  // span are omitted.
  std::vector<StageSummary> Summary() const;
  // The same as one JSON array of flat objects ("[]" when nothing ran).
  std::string SummaryJson() const;

  // Drops all events and stage samples (registered stages survive, so
  // cached StageStats pointers stay valid).
  void Clear();

 private:
  struct Stripe;

  Stripe& StripeForThisThread() const;
  double ToUs(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
  }

  Options options_;
  std::atomic<unsigned> mode_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex stages_mu_;
  std::vector<std::unique_ptr<StageStats>> stages_;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<std::uint64_t> num_events_{0};
  std::atomic<std::uint64_t> events_dropped_{0};
};

// The process-wide tracer (never destroyed, so exit-time exporters can
// read it safely). On first use, if the MGARDP_TRACE environment variable
// is set to a non-empty path, tracing starts enabled and a Chrome trace
// is written to that path at process exit.
Tracer& GlobalTracer();

// Dense id for the calling thread (0, 1, 2, ... in first-use order);
// exported so trace consumers can correlate with pool workers.
int CurrentThreadId();

// RAII scope. Construction snapshots the clock when the tracer is
// enabled; destruction records the interval. When disabled both ends are
// a relaxed load plus dead stores — no locks, no allocation.
class Span {
 public:
  Span(Tracer* tracer, StageStats* stage)
      : tracer_(tracer->enabled() ? tracer : nullptr), stage_(stage) {
    if (tracer_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~Span() {
    if (tracer_ != nullptr) {
      tracer_->RecordInterval(stage_, start_,
                              std::chrono::steady_clock::now());
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_;
  StageStats* stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace mgardp

// Opens a span named `name` (a string literal) in `category` on the
// global tracer for the rest of the enclosing scope. The stage AND the
// tracer pointer are cached in function-local statics: with both cached
// and Span fully inline, the disabled path compiles down to the static
// guards plus one relaxed load — no out-of-line call, so the span does
// not clobber the enclosing function's registers.
#define MGARDP_TRACE_CONCAT2(a, b) a##b
#define MGARDP_TRACE_CONCAT(a, b) MGARDP_TRACE_CONCAT2(a, b)
#define MGARDP_TRACE_SPAN(name, category)                                  \
  static ::mgardp::obs::Tracer* const MGARDP_TRACE_CONCAT(                 \
      mgardp_trace_tracer_, __LINE__) = &::mgardp::obs::GlobalTracer();    \
  static ::mgardp::obs::StageStats* const MGARDP_TRACE_CONCAT(             \
      mgardp_trace_stage_, __LINE__) =                                     \
      MGARDP_TRACE_CONCAT(mgardp_trace_tracer_, __LINE__)                  \
          ->GetOrCreateStage((name), (category));                          \
  ::mgardp::obs::Span MGARDP_TRACE_CONCAT(mgardp_trace_span_, __LINE__)(   \
      MGARDP_TRACE_CONCAT(mgardp_trace_tracer_, __LINE__),                 \
      MGARDP_TRACE_CONCAT(mgardp_trace_stage_, __LINE__))

#endif  // MGARDP_OBS_TRACER_H_
