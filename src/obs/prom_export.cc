#include "obs/prom_export.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/audit.h"
#include "obs/build_info.h"
#include "util/histogram.h"
#include "util/logging.h"

namespace mgardp {
namespace obs {

void PromWriter::Family(const std::string& name, const std::string& type,
                        const std::string& help) {
  family_ = name;
  out_ += "# HELP " + name + " " + EscapeHelp(help) + "\n";
  out_ += "# TYPE " + name + " " + type + "\n";
}

void PromWriter::SeriesLine(const std::string& name, const Labels& labels,
                            const std::string& value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) {
        out_ += ",";
      }
      out_ += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) +
              "\"";
    }
    out_ += "}";
  }
  out_ += " " + value + "\n";
}

void PromWriter::Sample(const Labels& labels, double value) {
  MGARDP_CHECK(!family_.empty());
  SeriesLine(family_, labels, FormatValue(value));
}

void PromWriter::HistogramSeries(const Labels& labels,
                                 const Histogram& histogram) {
  MGARDP_CHECK(!family_.empty());
  // One pass over the bucket counters; _count is their total, so
  // _count == the +Inf bucket by construction even if Record() calls race
  // this read (the separate count_ atomic could disagree transiently).
  std::uint64_t cum = 0;
  Labels bucket_labels = labels;
  bucket_labels.emplace_back("le", "");
  for (int b = 0; b <= histogram.num_buckets(); ++b) {
    cum += histogram.bucket_count(b);
    bucket_labels.back().second =
        FormatValue(histogram.bucket_upper_edge(b));
    SeriesLine(family_ + "_bucket", bucket_labels,
               FormatValue(static_cast<double>(cum)));
  }
  SeriesLine(family_ + "_sum", labels, FormatValue(histogram.sum()));
  SeriesLine(family_ + "_count", labels,
             FormatValue(static_cast<double>(cum)));
}

std::string PromWriter::EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromWriter::EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromWriter::FormatValue(double value) {
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  if (std::isnan(value)) {
    return "NaN";
  }
  // Counters and `le` edges print as plain integers when exact, which is
  // what scrapers (and golden files) expect.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void AppendAuditMetrics(const ErrorControlAuditor& auditor,
                        PromWriter* writer) {
  std::shared_lock<std::shared_mutex> lock(auditor.mu_);
  using Stats = ErrorControlAuditor::ModelStats;

  struct CounterFamily {
    const char* name;
    const char* help;
    std::atomic<std::uint64_t> Stats::*member;
  };
  static const CounterFamily kCounters[] = {
      {"mgardp_audit_records_total", "Audited retrieval requests.",
       &Stats::records},
      {"mgardp_audit_bound_violations_total",
       "Ground-truthed requests whose actual error exceeded the requested "
       "tolerance.",
       &Stats::violations},
      {"mgardp_audit_bound_satisfied_total",
       "Ground-truthed requests whose actual error met the requested "
       "tolerance.",
       &Stats::satisfied},
      {"mgardp_audit_estimate_only_total",
       "Requests audited without ground truth (estimate-only).",
       &Stats::estimate_only},
      {"mgardp_audit_degraded_total",
       "Requests served degraded by the fault-tolerant path.",
       &Stats::degraded},
  };
  for (const CounterFamily& f : kCounters) {
    writer->Family(f.name, "counter", f.help);
    for (const auto& m : auditor.models_) {
      writer->Sample({{"model", m->name}},
                     static_cast<double>(
                         ((*m).*(f.member)).load(std::memory_order_relaxed)));
    }
  }

  struct HistFamily {
    const char* name;
    const char* help;
    Histogram Stats::*member;
  };
  static const HistFamily kHists[] = {
      {"mgardp_audit_violation_magnitude",
       "Actual error / requested tolerance for ground-truthed requests.",
       &Stats::violation_magnitude},
      {"mgardp_audit_overfetch_ratio",
       "Bytes fetched / oracle-minimum bytes per the stored error matrices.",
       &Stats::overfetch},
      {"mgardp_audit_tightness_ratio",
       "Predicted error / actual error for ground-truthed requests.",
       &Stats::tightness},
  };
  for (const HistFamily& f : kHists) {
    writer->Family(f.name, "histogram", f.help);
    for (const auto& m : auditor.models_) {
      writer->HistogramSeries({{"model", m->name}}, (*m).*(f.member));
    }
  }

  // Per-level drift gauges need the per-model drift locks; collect the
  // values first so each family's samples come from one coherent walk.
  struct DriftRow {
    std::string model;
    int level;
    double window_mean;
    double window_max_abs;
    bool alert;
  };
  std::vector<DriftRow> rows;
  const double alert_planes = auditor.options_.drift_alert_planes;
  for (const auto& m : auditor.models_) {
    std::lock_guard<std::mutex> drift_lock(m->drift_mu);
    for (std::size_t l = 0; l < m->drift.size(); ++l) {
      const auto& d = m->drift[l];
      if (d.ring.empty()) {
        continue;
      }
      double sum = 0.0, sum_abs = 0.0, max_abs = 0.0;
      for (const double e : d.ring) {
        sum += e;
        sum_abs += std::abs(e);
        max_abs = std::max(max_abs, std::abs(e));
      }
      const double n = static_cast<double>(d.ring.size());
      rows.push_back({m->name, static_cast<int>(l), sum / n, max_abs,
                      sum_abs / n > alert_planes});
    }
  }
  writer->Family("mgardp_audit_level_drift_window_mean_planes", "gauge",
                 "Rolling-window mean signed bit-plane prefix prediction "
                 "error per level.");
  for (const DriftRow& r : rows) {
    writer->Sample({{"model", r.model}, {"level", std::to_string(r.level)}},
                   r.window_mean);
  }
  writer->Family("mgardp_audit_level_drift_window_max_abs_planes", "gauge",
                 "Rolling-window max absolute bit-plane prefix prediction "
                 "error per level.");
  for (const DriftRow& r : rows) {
    writer->Sample({{"model", r.model}, {"level", std::to_string(r.level)}},
                   r.window_max_abs);
  }
  writer->Family("mgardp_audit_level_drift_alert", "gauge",
                 "1 when the level's rolling-window mean absolute drift "
                 "exceeds the alert threshold.");
  for (const DriftRow& r : rows) {
    writer->Sample({{"model", r.model}, {"level", std::to_string(r.level)}},
                   r.alert ? 1.0 : 0.0);
  }
}

std::string RenderAuditPrometheus(const ErrorControlAuditor& auditor) {
  PromWriter writer;
  AppendBuildInfoMetrics(&writer);
  AppendAuditMetrics(auditor, &writer);
  return writer.str();
}

Status WritePromFile(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("prom export: cannot open " + tmp);
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("prom export: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("prom export: cannot rename into " + path);
  }
  return Status::OK();
}

PeriodicPromFlusher::PeriodicPromFlusher(std::string path,
                                         std::chrono::milliseconds interval,
                                         std::function<std::string()> render)
    : path_(std::move(path)),
      interval_(interval),
      render_(std::move(render)) {
  MGARDP_CHECK(render_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

PeriodicPromFlusher::~PeriodicPromFlusher() {
  const Status st = Stop();
  (void)st;
}

void PeriodicPromFlusher::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      break;
    }
    lock.unlock();
    const Status st = FlushOnce();
    lock.lock();
    ++flushes_;
    if (!st.ok() && last_error_.ok()) {
      last_error_ = st;
    }
  }
}

Status PeriodicPromFlusher::FlushOnce() {
  return WritePromFile(path_, render_());
}

Status PeriodicPromFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      return last_error_;
    }
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  const Status st = FlushOnce();
  std::lock_guard<std::mutex> lock(mu_);
  ++flushes_;
  if (!st.ok() && last_error_.ok()) {
    last_error_ = st;
  }
  return last_error_;
}

std::uint64_t PeriodicPromFlusher::flushes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

Status PeriodicPromFlusher::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace obs
}  // namespace mgardp
