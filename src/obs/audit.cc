#include "obs/audit.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

namespace mgardp {
namespace obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

// Ratio histograms: overfetch/tightness/violation magnitude live in
// roughly [0.01, 1e3] with occasional wild tails; 128 geometric buckets at
// 10% growth cover [0.01, ~2e3] with constant relative resolution.
Histogram::Options RatioHistogramOptions() {
  return Histogram::Options{1e-2, 1.1, 128};
}

ErrorControlAuditor::RatioSummary SummarizeRatio(const Histogram& h) {
  ErrorControlAuditor::RatioSummary s;
  s.count = h.count();
  s.mean = s.count == 0 ? 0.0 : h.sum() / static_cast<double>(s.count);
  s.p50 = h.Quantile(0.5);
  s.p90 = h.Quantile(0.9);
  s.min = h.min();
  s.max = h.max();
  return s;
}

void AppendRatioJson(std::ostringstream* os, const char* key,
                     const ErrorControlAuditor::RatioSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean\":%.6g,\"p50\":%.6g,"
                "\"p90\":%.6g,\"min\":%.6g,\"max\":%.6g}",
                key, static_cast<unsigned long long>(s.count), s.mean, s.p50,
                s.p90, s.min, s.max);
  *os << buf;
}

}  // namespace

ErrorControlAuditor::ModelStats::ModelStats(std::string model_name)
    : name(std::move(model_name)),
      violation_magnitude(RatioHistogramOptions()),
      overfetch(RatioHistogramOptions()),
      tightness(RatioHistogramOptions()) {}

ErrorControlAuditor::ErrorControlAuditor()
    : ErrorControlAuditor(Options()) {}

ErrorControlAuditor::ErrorControlAuditor(Options options)
    : options_(options) {
  if (options_.drift_window < 1) {
    options_.drift_window = 1;
  }
}

ErrorControlAuditor::ModelStats* ErrorControlAuditor::GetOrCreate(
    const std::string& model) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& m : models_) {
      if (m->name == model) {
        return m.get();
      }
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& m : models_) {
    if (m->name == model) {
      return m.get();
    }
  }
  models_.push_back(std::make_unique<ModelStats>(model));
  return models_.back().get();
}

void ErrorControlAuditor::Record(const AuditRecord& record) {
  ModelStats* m = GetOrCreate(record.model);
  m->records.fetch_add(1, kRelaxed);
  if (record.degraded) {
    m->degraded.fetch_add(1, kRelaxed);
  }
  if (record.has_actual()) {
    if (record.actual_error <= record.requested_tolerance) {
      m->satisfied.fetch_add(1, kRelaxed);
    } else {
      m->violations.fetch_add(1, kRelaxed);
      if (record.trace_id != 0) {
        m->last_violation_trace_id.store(record.trace_id, kRelaxed);
      }
    }
    if (record.requested_tolerance > 0.0) {
      m->violation_magnitude.Record(record.actual_error /
                                    record.requested_tolerance);
    }
    // predicted/actual blows up (and would wedge the histogram extrema at
    // +inf) on an exact reconstruction; such records carry no tightness
    // information anyway.
    if (record.actual_error > 0.0) {
      m->tightness.Record(record.predicted_error / record.actual_error);
    }
  } else {
    m->estimate_only.fetch_add(1, kRelaxed);
  }
  if (record.oracle_bytes > 0) {
    m->overfetch.Record(static_cast<double>(record.bytes_fetched) /
                        static_cast<double>(record.oracle_bytes));
  }
  if (!record.predicted_prefix.empty() &&
      record.predicted_prefix.size() == record.oracle_prefix.size()) {
    std::lock_guard<std::mutex> lock(m->drift_mu);
    if (m->drift.size() < record.predicted_prefix.size()) {
      m->drift.resize(record.predicted_prefix.size());
    }
    for (std::size_t l = 0; l < record.predicted_prefix.size(); ++l) {
      LevelDriftState& d = m->drift[l];
      const double err = static_cast<double>(record.predicted_prefix[l] -
                                             record.oracle_prefix[l]);
      ++d.count;
      d.sum += err;
      d.max_abs = std::max(d.max_abs, std::abs(err));
      if (d.ring.size() <
          static_cast<std::size_t>(options_.drift_window)) {
        d.ring.push_back(err);
      } else {
        d.ring[d.next] = err;
        d.next = (d.next + 1) % d.ring.size();
      }
    }
  }
  if (sink_count_.load(std::memory_order_acquire) > 0) {
    std::shared_lock<std::shared_mutex> lock(sinks_mu_);
    for (AuditSink* sink : sinks_) {
      sink->OnRecord(record);
    }
  }
}

void ErrorControlAuditor::AddSink(AuditSink* sink) {
  if (sink == nullptr) {
    return;
  }
  std::unique_lock<std::shared_mutex> lock(sinks_mu_);
  for (AuditSink* s : sinks_) {
    if (s == sink) {
      return;
    }
  }
  sinks_.push_back(sink);
  sink_count_.store(static_cast<int>(sinks_.size()),
                    std::memory_order_release);
}

void ErrorControlAuditor::RemoveSink(AuditSink* sink) {
  std::unique_lock<std::shared_mutex> lock(sinks_mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
  sink_count_.store(static_cast<int>(sinks_.size()),
                    std::memory_order_release);
}

ErrorControlAuditor::Snapshot ErrorControlAuditor::snapshot() const {
  Snapshot snap;
  std::shared_lock<std::shared_mutex> lock(mu_);
  snap.models.reserve(models_.size());
  for (const auto& m : models_) {
    ModelSnapshot ms;
    ms.model = m->name;
    ms.records = m->records.load(kRelaxed);
    ms.violations = m->violations.load(kRelaxed);
    ms.satisfied = m->satisfied.load(kRelaxed);
    ms.estimate_only = m->estimate_only.load(kRelaxed);
    ms.degraded = m->degraded.load(kRelaxed);
    ms.last_violation_trace_id = m->last_violation_trace_id.load(kRelaxed);
    ms.violation_magnitude = SummarizeRatio(m->violation_magnitude);
    ms.overfetch = SummarizeRatio(m->overfetch);
    ms.tightness = SummarizeRatio(m->tightness);
    {
      std::lock_guard<std::mutex> drift_lock(m->drift_mu);
      ms.drift.reserve(m->drift.size());
      for (std::size_t l = 0; l < m->drift.size(); ++l) {
        const LevelDriftState& d = m->drift[l];
        LevelDrift out;
        out.level = static_cast<int>(l);
        out.count = d.count;
        out.mean = d.count == 0 ? 0.0 : d.sum / static_cast<double>(d.count);
        out.max_abs = d.max_abs;
        if (!d.ring.empty()) {
          double sum = 0.0, sum_abs = 0.0, max_abs = 0.0;
          for (const double e : d.ring) {
            sum += e;
            sum_abs += std::abs(e);
            max_abs = std::max(max_abs, std::abs(e));
          }
          const double n = static_cast<double>(d.ring.size());
          out.window_mean = sum / n;
          out.window_mean_abs = sum_abs / n;
          out.window_max_abs = max_abs;
          out.alert = out.window_mean_abs > options_.drift_alert_planes;
        }
        ms.drift.push_back(out);
      }
    }
    snap.models.push_back(std::move(ms));
  }
  std::sort(snap.models.begin(), snap.models.end(),
            [](const ModelSnapshot& a, const ModelSnapshot& b) {
              return a.model < b.model;
            });
  return snap;
}

std::uint64_t ErrorControlAuditor::total_records() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& m : models_) {
    total += m->records.load(kRelaxed);
  }
  return total;
}

void ErrorControlAuditor::Reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& m : models_) {
    m->records.store(0, kRelaxed);
    m->violations.store(0, kRelaxed);
    m->satisfied.store(0, kRelaxed);
    m->estimate_only.store(0, kRelaxed);
    m->degraded.store(0, kRelaxed);
    m->last_violation_trace_id.store(0, kRelaxed);
    m->violation_magnitude.Reset();
    m->overfetch.Reset();
    m->tightness.Reset();
    std::lock_guard<std::mutex> drift_lock(m->drift_mu);
    m->drift.clear();
  }
}

std::string ErrorControlAuditor::Snapshot::ToJson() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelSnapshot& m = models[i];
    if (i > 0) {
      os << ",";
    }
    char head[640];
    std::snprintf(head, sizeof(head),
                  "{\"model\":\"%s\",\"records\":%llu,\"violations\":%llu,"
                  "\"satisfied\":%llu,\"estimate_only\":%llu,"
                  "\"degraded\":%llu,\"violation_rate\":%.6f,"
                  "\"last_violation_trace\":\"0x%llx\","
                  "\"drift_alert\":%s,",
                  m.model.c_str(),
                  static_cast<unsigned long long>(m.records),
                  static_cast<unsigned long long>(m.violations),
                  static_cast<unsigned long long>(m.satisfied),
                  static_cast<unsigned long long>(m.estimate_only),
                  static_cast<unsigned long long>(m.degraded),
                  m.violation_rate(),
                  static_cast<unsigned long long>(m.last_violation_trace_id),
                  m.drift_alert() ? "true" : "false");
    os << head;
    AppendRatioJson(&os, "violation_magnitude", m.violation_magnitude);
    os << ",";
    AppendRatioJson(&os, "overfetch", m.overfetch);
    os << ",";
    AppendRatioJson(&os, "tightness", m.tightness);
    os << ",\"drift\":[";
    for (std::size_t l = 0; l < m.drift.size(); ++l) {
      const LevelDrift& d = m.drift[l];
      if (l > 0) {
        os << ",";
      }
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "{\"level\":%d,\"count\":%llu,\"mean\":%.6g,"
                    "\"max_abs\":%.6g,\"window_mean\":%.6g,"
                    "\"window_mean_abs\":%.6g,\"window_max_abs\":%.6g,"
                    "\"alert\":%s}",
                    d.level, static_cast<unsigned long long>(d.count),
                    d.mean, d.max_abs, d.window_mean, d.window_mean_abs,
                    d.window_max_abs, d.alert ? "true" : "false");
      os << buf;
    }
    os << "]}";
  }
  os << "]";
  return os.str();
}

ErrorControlAuditor& GlobalAuditor() {
  // Leaked on purpose: exit-time exporters (--prom atexit hooks) may read
  // it after static destruction would have run.
  static ErrorControlAuditor* const auditor = new ErrorControlAuditor();
  return *auditor;
}

}  // namespace obs
}  // namespace mgardp
