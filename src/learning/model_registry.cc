#include "learning/model_registry.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "obs/tracer.h"
#include "util/crc32c.h"
#include "util/io.h"

namespace mgardp {
namespace learning {

namespace {

constexpr std::uint32_t kDMgardMagic = 0x444D4752u;  // "DMGR"
constexpr std::uint32_t kEMgardMagic = 0x454D4752u;  // "EMGR"
constexpr std::uint32_t kIndexMagic = 0x4D524547u;   // "MREG"
constexpr std::uint32_t kIndexVersion = 1;

std::string BlobFileName(const std::string& model_id, int version) {
  std::ostringstream os;
  os << model_id << "_v" << version << ".bin";
  return os.str();
}

}  // namespace

const char* ModelKindName(ModelKind kind) {
  return kind == ModelKind::kDMgard ? "dmgard" : "emgard";
}

const char* VersionStateName(VersionState state) {
  switch (state) {
    case VersionState::kCandidate:
      return "candidate";
    case VersionState::kServing:
      return "serving";
    case VersionState::kRetired:
      return "retired";
  }
  return "?";
}

Result<std::shared_ptr<const ModelVersion>> MakeModelVersion(
    const std::string& model_id, int version, std::string blob) {
  if (blob.size() < sizeof(std::uint32_t)) {
    return Status::Invalid("model blob: too short for a magic");
  }
  std::uint32_t magic = 0;
  std::memcpy(&magic, blob.data(), sizeof(magic));
  auto mv = std::make_shared<ModelVersion>();
  mv->model_id = model_id;
  mv->version = version;
  mv->crc32c = Crc32c(blob.data(), blob.size());
  if (magic == kDMgardMagic) {
    mv->kind = ModelKind::kDMgard;
    MGARDP_ASSIGN_OR_RETURN(DMgardModel model, DMgardModel::Deserialize(blob));
    mv->dmgard = std::make_shared<const DMgardModel>(std::move(model));
  } else if (magic == kEMgardMagic) {
    mv->kind = ModelKind::kEMgard;
    MGARDP_ASSIGN_OR_RETURN(EMgardModel model, EMgardModel::Deserialize(blob));
    mv->emgard = std::make_shared<const EMgardModel>(std::move(model));
  } else {
    return Status::Invalid("model blob: unrecognized magic");
  }
  mv->blob = std::move(blob);
  return std::shared_ptr<const ModelVersion>(std::move(mv));
}

ModelRegistry::ModelSlot* ModelRegistry::GetOrCreateSlot(
    const std::string& model_id) {
  auto it = slots_.find(model_id);
  if (it == slots_.end()) {
    it = slots_.emplace(model_id, std::make_unique<ModelSlot>()).first;
  }
  return it->second.get();
}

int ModelRegistry::IndexOf(const ModelSlot& slot, int version) {
  for (std::size_t i = 0; i < slot.versions.size(); ++i) {
    if (slot.versions[i]->version == version) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<int> ModelRegistry::Publish(const std::string& model_id,
                                   std::string blob) {
  MGARDP_TRACE_SPAN("learning/publish", "learning");
  if (model_id.empty()) {
    return Status::Invalid("registry: empty model id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  ModelSlot* slot = GetOrCreateSlot(model_id);
  const int version = slot->versions.empty()
                          ? 1
                          : slot->versions.back()->version + 1;
  MGARDP_ASSIGN_OR_RETURN(
      std::shared_ptr<const ModelVersion> mv,
      MakeModelVersion(model_id, version, std::move(blob)));
  slot->versions.push_back(std::move(mv));
  slot->states.push_back(VersionState::kCandidate);
  return version;
}

Status ModelRegistry::PromoteLocked(const std::string& model_id,
                                    ModelSlot* slot, int version) {
  const int idx = IndexOf(*slot, version);
  if (idx < 0) {
    std::ostringstream os;
    os << "registry: " << model_id << " has no version " << version;
    return Status::NotFound(os.str());
  }
  if (slot->serving == version) {
    return Status::OK();
  }
  MGARDP_TRACE_SPAN("learning/swap", "learning");
  if (slot->serving != 0) {
    const int old = IndexOf(*slot, slot->serving);
    if (old >= 0) {
      slot->states[old] = VersionState::kRetired;
    }
    slot->previous = slot->serving;
  }
  slot->serving = version;
  slot->states[idx] = VersionState::kServing;
  // The swap: one atomic store. In-flight readers keep the shared_ptr
  // they loaded earlier; its refcount is their epoch.
  slot->current.store(slot->versions[idx], std::memory_order_release);
  return Status::OK();
}

Status ModelRegistry::Promote(const std::string& model_id, int version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(model_id);
  if (it == slots_.end()) {
    return Status::NotFound("registry: unknown model id " + model_id);
  }
  return PromoteLocked(model_id, it->second.get(), version);
}

Status ModelRegistry::Pin(const std::string& model_id, int version) {
  return Promote(model_id, version);
}

Status ModelRegistry::Rollback(const std::string& model_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(model_id);
  if (it == slots_.end()) {
    return Status::NotFound("registry: unknown model id " + model_id);
  }
  ModelSlot* slot = it->second.get();
  if (slot->previous == 0) {
    return Status::Invalid("registry: " + model_id +
                           " has no previous serving version");
  }
  return PromoteLocked(model_id, slot, slot->previous);
}

Status ModelRegistry::Retire(const std::string& model_id, int version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(model_id);
  if (it == slots_.end()) {
    return Status::NotFound("registry: unknown model id " + model_id);
  }
  ModelSlot* slot = it->second.get();
  const int idx = IndexOf(*slot, version);
  if (idx < 0) {
    return Status::NotFound("registry: no such version");
  }
  if (slot->serving == version) {
    return Status::Invalid("registry: cannot retire the serving version");
  }
  slot->states[idx] = VersionState::kRetired;
  return Status::OK();
}

ServingHandle ModelRegistry::Handle(const std::string& model_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return ServingHandle(&GetOrCreateSlot(model_id)->current);
}

std::shared_ptr<const ModelVersion> ModelRegistry::Serving(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(model_id);
  return it == slots_.end()
             ? nullptr
             : it->second->current.load(std::memory_order_acquire);
}

std::shared_ptr<const ModelVersion> ModelRegistry::Get(
    const std::string& model_id, int version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(model_id);
  if (it == slots_.end()) {
    return nullptr;
  }
  const int idx = IndexOf(*it->second, version);
  return idx < 0 ? nullptr : it->second->versions[idx];
}

int ModelRegistry::serving_version(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(model_id);
  return it == slots_.end() ? 0 : it->second->serving;
}

std::vector<ModelRegistry::Entry> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> entries;
  for (const auto& [id, slot] : slots_) {
    for (std::size_t i = 0; i < slot->versions.size(); ++i) {
      const ModelVersion& mv = *slot->versions[i];
      Entry e;
      e.model_id = id;
      e.version = mv.version;
      e.kind = mv.kind;
      e.state = slot->states[i];
      e.crc32c = mv.crc32c;
      e.blob_bytes = mv.blob.size();
      entries.push_back(std::move(e));
    }
  }
  return entries;
}

Status ModelRegistry::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("registry: cannot create " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  BinaryWriter idx;
  idx.Put<std::uint32_t>(kIndexMagic);
  idx.Put<std::uint32_t>(kIndexVersion);
  std::uint64_t total = 0;
  for (const auto& [id, slot] : slots_) {
    total += slot->versions.size();
  }
  idx.Put<std::uint64_t>(total);
  for (const auto& [id, slot] : slots_) {
    for (std::size_t i = 0; i < slot->versions.size(); ++i) {
      const ModelVersion& mv = *slot->versions[i];
      idx.PutString(id);
      idx.Put<std::int32_t>(mv.version);
      idx.Put<std::uint8_t>(static_cast<std::uint8_t>(slot->states[i]));
      idx.Put<std::uint32_t>(mv.crc32c);
      idx.Put<std::int32_t>(slot->serving);
      idx.Put<std::int32_t>(slot->previous);
      MGARDP_RETURN_NOT_OK(WriteFile(
          dir + "/" + BlobFileName(id, mv.version), mv.blob));
    }
  }
  std::string bytes = idx.TakeBuffer();
  const std::uint32_t crc = Crc32c(bytes.data(), bytes.size());
  char trailer[sizeof(crc)];
  std::memcpy(trailer, &crc, sizeof(crc));
  bytes.append(trailer, sizeof(crc));
  return WriteFile(dir + "/registry.idx", bytes);
}

Status ModelRegistry::LoadFromDirectory(const std::string& dir) {
  MGARDP_ASSIGN_OR_RETURN(std::string bytes,
                          ReadFileToString(dir + "/registry.idx"));
  if (bytes.size() < sizeof(std::uint32_t) * 3) {
    return Status::DataLoss("registry index: truncated");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  if (Crc32c(bytes.data(), bytes.size() - sizeof(stored_crc)) != stored_crc) {
    return Status::DataLoss("registry index: CRC mismatch");
  }
  BinaryReader reader(bytes.data(), bytes.size() - sizeof(stored_crc));
  std::uint32_t magic = 0, version = 0;
  MGARDP_RETURN_NOT_OK(reader.Get(&magic));
  MGARDP_RETURN_NOT_OK(reader.Get(&version));
  if (magic != kIndexMagic || version != kIndexVersion) {
    return Status::DataLoss("registry index: bad magic/version");
  }
  std::uint64_t total = 0;
  MGARDP_RETURN_NOT_OK(reader.Get(&total));

  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint64_t i = 0; i < total; ++i) {
    std::string id;
    std::int32_t mv_version = 0, serving = 0, previous = 0;
    std::uint8_t state = 0;
    std::uint32_t crc = 0;
    MGARDP_RETURN_NOT_OK(reader.GetString(&id));
    MGARDP_RETURN_NOT_OK(reader.Get(&mv_version));
    MGARDP_RETURN_NOT_OK(reader.Get(&state));
    MGARDP_RETURN_NOT_OK(reader.Get(&crc));
    MGARDP_RETURN_NOT_OK(reader.Get(&serving));
    MGARDP_RETURN_NOT_OK(reader.Get(&previous));
    MGARDP_ASSIGN_OR_RETURN(
        std::string blob,
        ReadFileToString(dir + "/" + BlobFileName(id, mv_version)));
    if (Crc32c(blob.data(), blob.size()) != crc) {
      return Status::DataLoss("registry: blob CRC mismatch for " + id +
                              " v" + std::to_string(mv_version));
    }
    MGARDP_ASSIGN_OR_RETURN(
        std::shared_ptr<const ModelVersion> mv,
        MakeModelVersion(id, mv_version, std::move(blob)));
    ModelSlot* slot = GetOrCreateSlot(id);
    slot->versions.push_back(std::move(mv));
    slot->states.push_back(static_cast<VersionState>(state));
    slot->serving = serving;
    slot->previous = previous;
    if (static_cast<VersionState>(state) == VersionState::kServing) {
      slot->current.store(slot->versions.back(), std::memory_order_release);
    }
  }
  // Keep versions ordered so the next Publish numbers correctly.
  for (auto& [id, slot] : slots_) {
    std::vector<std::size_t> order(slot->versions.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return slot->versions[a]->version < slot->versions[b]->version;
    });
    std::vector<std::shared_ptr<const ModelVersion>> versions;
    std::vector<VersionState> states;
    for (const std::size_t i : order) {
      versions.push_back(std::move(slot->versions[i]));
      states.push_back(slot->states[i]);
    }
    slot->versions = std::move(versions);
    slot->states = std::move(states);
  }
  return Status::OK();
}

}  // namespace learning
}  // namespace mgardp
