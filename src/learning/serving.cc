#include "learning/serving.h"

#include <utility>

#include "models/dmgard.h"
#include "models/features.h"

namespace mgardp {
namespace learning {

VersionedEstimator::VersionedEstimator(
    std::shared_ptr<const ModelVersion> version)
    : version_(std::move(version)), estimator_(version_->emgard.get()) {}

double VersionedEstimator::Estimate(const RefactoredField& field,
                                    const std::vector<int>& prefix) const {
  return estimator_.Estimate(field, prefix);
}

Result<double> VersionedEstimator::TryEstimate(
    const RefactoredField& field, const std::vector<int>& prefix) const {
  return estimator_.TryEstimate(field, prefix);
}

std::string VersionedEstimator::name() const {
  return "e-mgard@v" + std::to_string(version_->version);
}

std::string VersionAuditId(const ModelVersion& version) {
  const char* base =
      version.kind == ModelKind::kEMgard ? "emgard" : "dmgard";
  return std::string(base) + "@v" + std::to_string(version.version);
}

EstimatorProvider MakeRegistryEstimatorProvider(ModelRegistry* registry,
                                                const std::string& model_id) {
  ServingHandle handle = registry->Handle(model_id);
  return [handle]() -> EstimatorLease {
    std::shared_ptr<const ModelVersion> version = handle.load();
    if (version == nullptr || version->kind != ModelKind::kEMgard ||
        version->emgard == nullptr) {
      return EstimatorLease{};
    }
    EstimatorLease lease;
    lease.estimator = std::make_shared<VersionedEstimator>(version);
    lease.audit_model_id = VersionAuditId(*version);
    return lease;
  };
}

Result<RetrievalPlan> PlanWithModelVersion(const RefactoredField& field,
                                           double bound,
                                           const ModelVersion& version) {
  if (version.kind == ModelKind::kEMgard) {
    if (version.emgard == nullptr) {
      return Status::Invalid("serving: E-MGARD version has no model");
    }
    LearnedConstantsEstimator estimator(version.emgard.get());
    Reconstructor rec(&estimator);
    return rec.Plan(field, bound);
  }
  if (version.dmgard == nullptr) {
    return Status::Invalid("serving: D-MGARD version has no model");
  }
  MGARDP_ASSIGN_OR_RETURN(
      std::vector<int> prefix,
      version.dmgard->Predict(ExtractDataFeatures(field.data_summary),
                              field.level_sketches, bound));
  TheoryEstimator theory;
  Reconstructor rec(&theory);
  MGARDP_ASSIGN_OR_RETURN(RetrievalPlan plan,
                          rec.PlanFromPrefix(field, prefix));
  plan.estimated_error = bound;  // the model's implicit claim
  return plan;
}

}  // namespace learning
}  // namespace mgardp
