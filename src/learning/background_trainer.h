// Background model refitting driven by the audit layer.
//
// The trainer closes the drift loop: the auditor's rolling per-level
// monitors flag a stale model, the TrainingSetCollector has been absorbing
// the offending traffic all along, and RunOnce turns that into a new
// candidate — refit with dnn::Trainer (validation split + early stopping),
// publish into the ModelRegistry, hand to the ShadowEvaluator. Nothing
// serves until the shadow run proves the candidate better.
//
// Two triggers, either fires a refit:
//   * drift: any audited model whose base id matches ours reports a
//     drift_alert (window mean |predicted - oracle| planes past the
//     auditor threshold);
//   * watermark: `watermark` new ground-truthed rows accepted since the
//     last refit (keeps the model fresh even when drift stays subtle).
// Both are gated on min_rows in the reservoir and on no shadow evaluation
// already being in flight — publishing a second candidate while the first
// is still being judged would race the promotion state machine.
//
// Deployment: Start() runs the trigger loop on a dedicated thread (the
// training matmuls themselves fan out on the shared pool via the dnn
// layer); tests and the retrain bench call RunOnce()/TrainNow() inline
// for determinism.

#ifndef MGARDP_LEARNING_BACKGROUND_TRAINER_H_
#define MGARDP_LEARNING_BACKGROUND_TRAINER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "learning/model_registry.h"
#include "learning/shadow.h"
#include "learning/training_set.h"
#include "models/dmgard.h"
#include "models/emgard.h"
#include "obs/audit.h"

namespace mgardp {

class ServiceMetrics;

namespace learning {

class BackgroundTrainer {
 public:
  struct Options {
    // Registry key and collector bucket; also selects the model family
    // ("emgard" refits EMgardModel, anything else DMgardModel).
    std::string model_id = "dmgard";
    std::size_t min_rows = 48;
    std::uint64_t watermark = 128;
    bool on_drift = true;
    // Minimum newly accepted rows between drift-triggered refits. A
    // retired version's drift window stays alerted forever (no new traffic
    // updates it); without fresh data a refit would reproduce the same
    // model from the same reservoir.
    std::uint64_t drift_cooldown_rows = 16;
    std::chrono::milliseconds poll{100};
    DMgardConfig dmgard;
    EMgardConfig emgard;
    // Training progress sink (wired into TrainConfig::log_fn so epochs
    // never write to the serving process's stdout/stderr).
    std::function<void(const std::string&)> log_fn;
  };

  // All pointers must outlive the trainer; `auditor`, `shadow`, and
  // `metrics` may be null (no drift trigger / no shadow handoff / no
  // counters).
  BackgroundTrainer(TrainingSetCollector* collector, ModelRegistry* registry,
                    ShadowEvaluator* shadow,
                    obs::ErrorControlAuditor* auditor,
                    ServiceMetrics* metrics)
      : BackgroundTrainer(collector, registry, shadow, auditor, metrics,
                          Options()) {}
  BackgroundTrainer(TrainingSetCollector* collector, ModelRegistry* registry,
                    ShadowEvaluator* shadow,
                    obs::ErrorControlAuditor* auditor,
                    ServiceMetrics* metrics, Options options);
  ~BackgroundTrainer();

  BackgroundTrainer(const BackgroundTrainer&) = delete;
  BackgroundTrainer& operator=(const BackgroundTrainer&) = delete;

  // Evaluates the triggers; refits + publishes + starts shadowing when one
  // fires. Returns the published candidate version, 0 when nothing fired.
  Result<int> RunOnce();

  // Unconditional refit (still requires min_rows of data).
  Result<int> TrainNow();

  // Dedicated-thread trigger loop (idempotent Start; Stop joins).
  void Start();
  void Stop();

  std::uint64_t retrains() const;
  bool ShouldTrain() const;  // trigger state, for tests/introspection

 private:
  TrainingSetCollector* collector_;
  ModelRegistry* registry_;
  ShadowEvaluator* shadow_;
  obs::ErrorControlAuditor* auditor_;
  ServiceMetrics* metrics_;
  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  std::uint64_t retrains_ = 0;
  std::uint64_t trained_at_accepted_ = 0;  // watermark baseline
};

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_BACKGROUND_TRAINER_H_
