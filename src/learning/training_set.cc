#include "learning/training_set.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "models/features.h"
#include "util/crc32c.h"
#include "util/io.h"

namespace mgardp {
namespace learning {

namespace {

// "MPTS" — mgardp training set.
constexpr std::uint32_t kTrainingSetMagic = 0x4D505453u;
constexpr std::uint32_t kTrainingSetVersion = 1;

// Stable 64-bit key hash (FNV-1a) for deriving per-bucket RNG seeds.
std::uint64_t HashKey(const std::string& model, std::size_t levels) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : model) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  h = (h ^ levels) * 1099511628211ull;
  return h;
}

}  // namespace

std::string BaseModelId(const std::string& model_id) {
  const std::size_t at = model_id.rfind("@v");
  if (at == std::string::npos) {
    return model_id;
  }
  // Only strip a real version suffix ("@v" followed by digits).
  for (std::size_t i = at + 2; i < model_id.size(); ++i) {
    if (model_id[i] < '0' || model_id[i] > '9') {
      return model_id;
    }
  }
  return at + 2 < model_id.size() ? model_id.substr(0, at) : model_id;
}

TrainingSetCollector::TrainingSetCollector(Options options)
    : options_(options) {
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
}

void TrainingSetCollector::OnRecord(const obs::AuditRecord& record) {
  if (!record.has_examples() ||
      (options_.require_actual && !record.has_actual()) ||
      record.predicted_prefix.empty() ||
      record.level_errors.size() != record.predicted_prefix.size() ||
      record.sketches.size() != record.predicted_prefix.size()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++skipped_;
    return;
  }

  RetrievalRecord row;
  row.requested_abs_error = record.requested_tolerance;
  const double range = record.summary.range();
  row.requested_rel_error =
      range > 0.0 ? record.requested_tolerance / range : 0.0;
  row.achieved_error = record.actual_error;
  row.estimated_error = record.predicted_error;
  row.total_bytes = record.bytes_fetched;
  row.bitplanes = record.predicted_prefix;
  row.level_errors = record.level_errors;
  row.features = ExtractDataFeatures(record.summary);
  row.sketches = record.sketches;
  row.is_ladder = false;

  const std::string model = BaseModelId(record.model);
  const std::pair<std::string, std::size_t> key{
      model, record.predicted_prefix.size()};

  std::lock_guard<std::mutex> lock(mu_);
  // A per-collector sequence number stands in for the timestep: DMgard's
  // trainer dedups rows by (timestep, prefix), and live traffic carries no
  // frame identity — distinct requests must stay distinct rows.
  row.timestep = static_cast<int>(++sequence_);
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    it = buckets_
             .emplace(key, std::make_unique<Reservoir>(
                               options_.seed ^ HashKey(model, key.second)))
             .first;
  }
  Reservoir& r = *it->second;
  ++r.seen;
  ++accepted_[model];
  if (r.rows.size() < options_.capacity) {
    r.rows.push_back(std::move(row));
  } else {
    // Algorithm R: replace a uniform victim with probability capacity/seen.
    const std::uint64_t j = r.rng.NextBounded(r.seen);
    if (j < options_.capacity) {
      r.rows[j] = std::move(row);
    }
  }
}

std::vector<RetrievalRecord> TrainingSetCollector::Rows(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Reservoir* best = nullptr;
  for (const auto& [key, r] : buckets_) {
    if (key.first != model) {
      continue;
    }
    if (best == nullptr || r->rows.size() > best->rows.size()) {
      best = r.get();
    }
  }
  return best != nullptr ? best->rows : std::vector<RetrievalRecord>{};
}

std::size_t TrainingSetCollector::RowCount(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t largest = 0;
  for (const auto& [key, r] : buckets_) {
    if (key.first == model) {
      largest = std::max(largest, r->rows.size());
    }
  }
  return largest;
}

std::uint64_t TrainingSetCollector::accepted(
    const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = accepted_.find(model);
  return it == accepted_.end() ? 0 : it->second;
}

std::uint64_t TrainingSetCollector::total_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [model, n] : accepted_) {
    total += n;
  }
  return total;
}

std::uint64_t TrainingSetCollector::skipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_;
}

void TrainingSetCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  accepted_.clear();
  skipped_ = 0;
}

std::string SerializeTrainingSet(const std::string& model,
                                 const std::vector<RetrievalRecord>& rows) {
  BinaryWriter w;
  w.Put<std::uint32_t>(kTrainingSetMagic);
  w.Put<std::uint32_t>(kTrainingSetVersion);
  w.PutString(model);
  w.Put<std::uint64_t>(rows.size());
  for (const RetrievalRecord& r : rows) {
    w.Put<std::int32_t>(r.timestep);
    w.Put<double>(r.requested_rel_error);
    w.Put<double>(r.requested_abs_error);
    w.Put<double>(r.achieved_error);
    w.Put<double>(r.estimated_error);
    w.Put<std::uint64_t>(r.total_bytes);
    w.PutVector(r.bitplanes);
    w.PutVector(r.level_errors);
    w.PutVector(r.features);
    w.Put<std::uint64_t>(r.sketches.size());
    for (const auto& sketch : r.sketches) {
      w.PutVector(sketch);
    }
    w.Put<std::uint8_t>(r.is_ladder ? 1 : 0);
  }
  std::string out = w.TakeBuffer();
  const std::uint32_t crc = Crc32c(out.data(), out.size());
  char trailer[sizeof(crc)];
  std::memcpy(trailer, &crc, sizeof(crc));
  out.append(trailer, sizeof(crc));
  return out;
}

Result<std::vector<RetrievalRecord>> ParseTrainingSet(
    const std::string& bytes, std::string* model_out) {
  if (bytes.size() < sizeof(std::uint32_t) * 3) {
    return Status::DataLoss("training set: truncated container");
  }
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(stored_crc),
              sizeof(stored_crc));
  const std::uint32_t crc =
      Crc32c(bytes.data(), bytes.size() - sizeof(stored_crc));
  if (crc != stored_crc) {
    return Status::DataLoss("training set: CRC mismatch (corrupt snapshot)");
  }
  BinaryReader reader(bytes.data(), bytes.size() - sizeof(stored_crc));
  std::uint32_t magic = 0, version = 0;
  MGARDP_RETURN_NOT_OK(reader.Get(&magic));
  if (magic != kTrainingSetMagic) {
    return Status::DataLoss("training set: bad magic");
  }
  MGARDP_RETURN_NOT_OK(reader.Get(&version));
  if (version != kTrainingSetVersion) {
    return Status::Invalid("training set: unsupported version");
  }
  std::string model;
  MGARDP_RETURN_NOT_OK(reader.GetString(&model));
  if (model_out != nullptr) {
    *model_out = model;
  }
  std::uint64_t n = 0;
  MGARDP_RETURN_NOT_OK(reader.Get(&n));
  std::vector<RetrievalRecord> rows;
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RetrievalRecord r;
    std::int32_t timestep = 0;
    MGARDP_RETURN_NOT_OK(reader.Get(&timestep));
    r.timestep = timestep;
    MGARDP_RETURN_NOT_OK(reader.Get(&r.requested_rel_error));
    MGARDP_RETURN_NOT_OK(reader.Get(&r.requested_abs_error));
    MGARDP_RETURN_NOT_OK(reader.Get(&r.achieved_error));
    MGARDP_RETURN_NOT_OK(reader.Get(&r.estimated_error));
    std::uint64_t total_bytes = 0;
    MGARDP_RETURN_NOT_OK(reader.Get(&total_bytes));
    r.total_bytes = total_bytes;
    MGARDP_RETURN_NOT_OK(reader.GetVector(&r.bitplanes));
    MGARDP_RETURN_NOT_OK(reader.GetVector(&r.level_errors));
    MGARDP_RETURN_NOT_OK(reader.GetVector(&r.features));
    std::uint64_t n_sketches = 0;
    MGARDP_RETURN_NOT_OK(reader.Get(&n_sketches));
    r.sketches.resize(n_sketches);
    for (auto& sketch : r.sketches) {
      MGARDP_RETURN_NOT_OK(reader.GetVector(&sketch));
    }
    std::uint8_t ladder = 0;
    MGARDP_RETURN_NOT_OK(reader.Get(&ladder));
    r.is_ladder = ladder != 0;
    rows.push_back(std::move(r));
  }
  if (!reader.exhausted()) {
    return Status::DataLoss("training set: trailing bytes");
  }
  return rows;
}

Status TrainingSetCollector::SaveSnapshot(const std::string& path,
                                          const std::string& model) const {
  return WriteFile(path, SerializeTrainingSet(model, Rows(model)));
}

Result<std::vector<RetrievalRecord>> TrainingSetCollector::LoadSnapshot(
    const std::string& path, std::string* model_out) {
  MGARDP_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return ParseTrainingSet(bytes, model_out);
}

}  // namespace learning
}  // namespace mgardp
