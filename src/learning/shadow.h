// Shadow A/B evaluation and the promotion state machine.
//
// A freshly retrained candidate must earn the serving slot on live
// traffic. While a candidate shadows, the serving path scores every
// request under both models (the candidate predicts but never serves) and
// feeds the paired outcomes here. After `window` pairs the verdict is
// mechanical:
//
//       promote  iff  candidate violations <= incumbent violations
//                       + violation_epsilon * window
//                and  candidate mean bytes <= incumbent mean bytes
//                       * overfetch_slack
//
// i.e. the candidate must not be worse on bound honesty and must not pay
// for it with a fetch blow-up. A losing candidate is retired in the
// registry and never serves.
//
// Promotion is not the end: the state machine enters probation and keeps
// watching the (now serving) version for `probation_window` requests. If
// its violation rate regresses past rollback_factor x the rate the
// candidate showed during shadowing (with an absolute floor so a single
// unlucky request cannot trip it), the registry rolls back to the prior
// version automatically.
//
//   kIdle -> StartShadow -> kShadowing -> promote -> kProbation -> kIdle
//                               |                        |
//                               +-> reject (retire)      +-> rollback
//
// All transitions are serialized per model id; scoring calls are cheap
// (counter updates) and safe from concurrent serving threads.

#ifndef MGARDP_LEARNING_SHADOW_H_
#define MGARDP_LEARNING_SHADOW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "learning/model_registry.h"
#include "util/status.h"

namespace mgardp {

class ServiceMetrics;

namespace learning {

// One request scored under one model.
struct ShadowScore {
  bool has_actual = false;  // ground truth was available
  bool violation = false;   // actual error exceeded the tolerance
  std::size_t bytes = 0;    // bytes the model's plan fetched
};

class ShadowEvaluator {
 public:
  struct Options {
    std::size_t window = 24;          // paired requests before a verdict
    double violation_epsilon = 0.0;   // allowed candidate excess rate
    double overfetch_slack = 1.15;    // candidate mean-bytes leash
    std::size_t probation_window = 24;
    double rollback_factor = 1.5;     // regression multiple triggering it
    double rollback_floor = 0.10;     // minimum absolute regressed rate
  };

  enum class State { kIdle, kShadowing, kProbation };
  enum class Action { kNone, kPromoted, kRejected, kRolledBack };

  struct Stats {
    std::uint64_t shadow_pairs = 0;
    std::uint64_t promotions = 0;
    std::uint64_t rejections = 0;
    std::uint64_t rollbacks = 0;
  };

  // `registry` must outlive the evaluator; `metrics` may be null.
  ShadowEvaluator(ModelRegistry* registry, ServiceMetrics* metrics)
      : ShadowEvaluator(registry, metrics, Options()) {}
  ShadowEvaluator(ModelRegistry* registry, ServiceMetrics* metrics,
                  Options options);

  // Enters kShadowing for `model_id` with published candidate `version`.
  // Fails if a shadow run or probation is already in progress for the id,
  // or the version does not exist.
  Status StartShadow(const std::string& model_id, int version);

  State state(const std::string& model_id) const;
  int candidate_version(const std::string& model_id) const;  // 0 = none
  // The candidate model for the serving path to score against (nullptr
  // when not shadowing).
  std::shared_ptr<const ModelVersion> Candidate(
      const std::string& model_id) const;

  // One live request scored under both models. Returns the transition the
  // pair caused (promotion happens inside, via the registry).
  Action ObservePair(const std::string& model_id,
                     const ShadowScore& incumbent,
                     const ShadowScore& candidate);

  // One serving-path request observed during probation (call it on every
  // request; outside probation it is a cheap no-op). May roll back.
  Action ObserveServing(const std::string& model_id,
                        const ShadowScore& serving);

  Stats stats() const;

 private:
  struct Track {
    State state = State::kIdle;
    int candidate = 0;
    std::shared_ptr<const ModelVersion> candidate_model;
    // Shadow-window accumulators (ground-truthed pairs only).
    std::uint64_t pairs = 0;
    std::uint64_t incumbent_violations = 0;
    std::uint64_t candidate_violations = 0;
    double incumbent_bytes = 0.0;
    double candidate_bytes = 0.0;
    // Probation accumulators.
    double shadow_violation_rate = 0.0;  // candidate's rate when promoted
    std::uint64_t probation_seen = 0;
    std::uint64_t probation_violations = 0;
  };

  Action Verdict(const std::string& model_id, Track* t);

  ModelRegistry* registry_;
  ServiceMetrics* metrics_;
  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Track> tracks_;
  Stats stats_;
};

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_SHADOW_H_
