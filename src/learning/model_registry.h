// Versioned, checksummed model store with lock-free hot swap.
//
// Every published weight blob becomes an immutable ModelVersion: the raw
// serialized bytes, their CRC-32C, and the deserialized network (the blob's
// magic routes DMGR vs EMGR). Versions number from 1 per model id and are
// never mutated after Publish — promotion, pinning, and rollback only move
// the serving designation.
//
// Swap mechanics: each model id owns one std::atomic<std::shared_ptr<const
// ModelVersion>> slot. Promote stores the new version into the slot;
// readers obtained the previous shared_ptr earlier and keep it alive for
// as long as they hold it — that shared_ptr *is* the epoch. An in-flight
// session that pinned v3 at its first refinement keeps predicting with v3
// until it drops the handle, while new sessions pick up v4; no reader ever
// observes a torn or freed model. The read path (ServingHandle::load) is a
// single atomic shared_ptr load and never touches the registry mutex.
//
// Persistence: SaveToDirectory writes one blob file per version plus a
// CRC-trailed index naming versions/states/checksums; LoadFromDirectory
// verifies every checksum and rejects corruption as kDataLoss.

#ifndef MGARDP_LEARNING_MODEL_REGISTRY_H_
#define MGARDP_LEARNING_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/dmgard.h"
#include "models/emgard.h"
#include "util/status.h"

namespace mgardp {
namespace learning {

enum class ModelKind { kDMgard, kEMgard };
enum class VersionState { kCandidate, kServing, kRetired };

const char* ModelKindName(ModelKind kind);
const char* VersionStateName(VersionState state);

// Immutable after Publish.
struct ModelVersion {
  std::string model_id;
  int version = 0;
  ModelKind kind = ModelKind::kDMgard;
  std::uint32_t crc32c = 0;
  std::string blob;
  // Exactly one is set, matching `kind`.
  std::shared_ptr<const DMgardModel> dmgard;
  std::shared_ptr<const EMgardModel> emgard;
};

// Lock-free read handle bound to one model id's serving slot. Obtain once
// from ModelRegistry::Handle (that takes the registry mutex), then load()
// per request. The registry must outlive all handles; slots are never
// deallocated.
class ServingHandle {
 public:
  ServingHandle() = default;

  // nullptr when nothing serves the id yet (or the handle is empty).
  std::shared_ptr<const ModelVersion> load() const {
    return slot_ == nullptr
               ? nullptr
               : slot_->load(std::memory_order_acquire);
  }
  bool valid() const { return slot_ != nullptr; }

 private:
  friend class ModelRegistry;
  using Slot = std::atomic<std::shared_ptr<const ModelVersion>>;
  explicit ServingHandle(const Slot* slot) : slot_(slot) {}
  const Slot* slot_ = nullptr;
};

class ModelRegistry {
 public:
  struct Entry {
    std::string model_id;
    int version = 0;
    ModelKind kind = ModelKind::kDMgard;
    VersionState state = VersionState::kCandidate;
    std::uint32_t crc32c = 0;
    std::size_t blob_bytes = 0;
  };

  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  // Validates the blob (magic routes the kind, the weights must
  // deserialize), checksums it, and stores it as a candidate. Returns the
  // assigned version number (1-based, monotonic per model id).
  Result<int> Publish(const std::string& model_id, std::string blob);

  // Makes `version` the serving one (atomic slot store); the previously
  // serving version retires and is remembered for Rollback. Promoting the
  // already-serving version is a no-op.
  Status Promote(const std::string& model_id, int version);
  // Operator override: same swap, any existing version. (Promote and Pin
  // are the same state transition; the two names document intent.)
  Status Pin(const std::string& model_id, int version);
  // Re-serves the version that was serving before the current one.
  Status Rollback(const std::string& model_id);
  // Marks a candidate as retired (shadow evaluation rejected it).
  Status Retire(const std::string& model_id, int version);

  // Lock-free slot handle; creates the (empty) slot if the id is new.
  ServingHandle Handle(const std::string& model_id);

  // Convenience lookups (these take the registry mutex; use Handle on
  // serving hot paths).
  std::shared_ptr<const ModelVersion> Serving(
      const std::string& model_id) const;
  std::shared_ptr<const ModelVersion> Get(const std::string& model_id,
                                          int version) const;
  int serving_version(const std::string& model_id) const;  // 0 = none
  std::vector<Entry> List() const;

  // Directory persistence for the CLI: <model>_v<N>.bin blobs plus a
  // CRC-trailed registry.idx. Load verifies every blob checksum.
  Status SaveToDirectory(const std::string& dir) const;
  Status LoadFromDirectory(const std::string& dir);

 private:
  struct ModelSlot {
    std::vector<std::shared_ptr<const ModelVersion>> versions;
    std::vector<VersionState> states;  // parallel to versions
    int serving = 0;                   // version number, 0 = none
    int previous = 0;                  // for Rollback
    ServingHandle::Slot current{nullptr};
  };

  ModelSlot* GetOrCreateSlot(const std::string& model_id);
  static int IndexOf(const ModelSlot& slot, int version);
  Status PromoteLocked(const std::string& model_id, ModelSlot* slot,
                       int version);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ModelSlot>> slots_;
};

// Builds a ModelVersion from a weight blob: sniffs the DMGR/EMGR magic,
// deserializes, checksums. Shared by Publish and LoadFromDirectory.
Result<std::shared_ptr<const ModelVersion>> MakeModelVersion(
    const std::string& model_id, int version, std::string blob);

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_MODEL_REGISTRY_H_
