// Audit-driven training sets: the bridge from live traffic to retraining.
//
// The audit layer already sees everything a model refit needs — the field
// summary the features derive from, the per-level sketches, the chosen
// bit-plane prefix, and (when ground truth was attached) the achieved
// error. TrainingSetCollector subscribes to those records through the
// push-based AuditSink and keeps a bounded, seeded reservoir of converted
// RetrievalRecords per (model, level-count) bucket, so an unbounded record
// stream costs O(capacity) memory and every row surviving the reservoir is
// a uniform sample of the traffic seen so far (Algorithm R).
//
// Bucketing by level count matters: a refit trains one MLP chain per
// level, so rows of different shapes cannot share a matrix. The model key
// is normalized by stripping any "@vN" version suffix — traffic served by
// "dmgard@v3" and "dmgard@v4" trains the same base model.
//
// Snapshots persist one model's rows as a versioned container with a
// CRC-32C trailer; a corrupted byte anywhere loads back as kDataLoss, the
// same contract the segment container gives.

#ifndef MGARDP_LEARNING_TRAINING_SET_H_
#define MGARDP_LEARNING_TRAINING_SET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "models/training_data.h"
#include "obs/audit.h"
#include "util/rng.h"
#include "util/status.h"

namespace mgardp {
namespace learning {

// "dmgard@v3" -> "dmgard"; ids without a version pass through.
std::string BaseModelId(const std::string& model_id);

class TrainingSetCollector : public obs::AuditSink {
 public:
  struct Options {
    // Rows kept per (model, level-count) reservoir.
    std::size_t capacity = 4096;
    std::uint64_t seed = 1;
    // Keep only ground-truthed records (achieved error known); without
    // this the achieved-error training target would be meaningless.
    bool require_actual = true;
  };

  TrainingSetCollector() : TrainingSetCollector(Options()) {}
  explicit TrainingSetCollector(Options options);

  // AuditSink: thread-safe, called on the recording thread. Records
  // without an example payload (no sink was registered when the caller
  // built them, or an internal path) are counted as skipped.
  void OnRecord(const obs::AuditRecord& record) override;

  // Rows currently held for `model` (base id), merged is not needed —
  // rows of one model always share a level count per bucket; when several
  // level counts were seen, the largest bucket wins. Uniform sample of
  // lifetime traffic.
  std::vector<RetrievalRecord> Rows(const std::string& model) const;
  std::size_t RowCount(const std::string& model) const;

  // Lifetime records accepted into `model`'s buckets (not capped by the
  // reservoir) — the BackgroundTrainer's watermark counts these.
  std::uint64_t accepted(const std::string& model) const;
  std::uint64_t total_accepted() const;
  std::uint64_t skipped() const;  // no examples / no ground truth

  void Clear();

  // Snapshot persistence: magic + version + model + rows + CRC-32C
  // trailer. Save writes the rows Rows(model) returns; Load verifies the
  // checksum before parsing and rejects any corruption as kDataLoss.
  Status SaveSnapshot(const std::string& path,
                      const std::string& model) const;
  static Result<std::vector<RetrievalRecord>> LoadSnapshot(
      const std::string& path, std::string* model_out = nullptr);

 private:
  struct Reservoir {
    std::vector<RetrievalRecord> rows;
    std::uint64_t seen = 0;  // rows offered to this reservoir
    Rng rng;
    explicit Reservoir(std::uint64_t seed) : rng(seed) {}
  };

  Options options_;
  mutable std::mutex mu_;
  // (base model, level count) -> reservoir.
  std::map<std::pair<std::string, std::size_t>, std::unique_ptr<Reservoir>>
      buckets_;
  std::map<std::string, std::uint64_t> accepted_;
  std::uint64_t sequence_ = 0;  // becomes RetrievalRecord.timestep
  std::uint64_t skipped_ = 0;
};

// Serializes rows into the snapshot container (exposed for tests).
std::string SerializeTrainingSet(const std::string& model,
                                 const std::vector<RetrievalRecord>& rows);
Result<std::vector<RetrievalRecord>> ParseTrainingSet(
    const std::string& bytes, std::string* model_out = nullptr);

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_TRAINING_SET_H_
