#include "learning/batched_serving.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

namespace mgardp {
namespace learning {

BatchedConstantsEstimator::BatchedConstantsEstimator(
    std::shared_ptr<const ModelVersion> version,
    dnn::InferenceBatcher* batcher, ServiceMetrics* metrics)
    : version_(std::move(version)), batcher_(batcher), metrics_(metrics) {
  MGARDP_CHECK(version_ != nullptr);
  MGARDP_CHECK(version_->kind == ModelKind::kEMgard);
  MGARDP_CHECK(version_->emgard != nullptr);
  const std::string prefix = KeyPrefix(*version_);
  level_keys_.reserve(
      static_cast<std::size_t>(version_->emgard->num_levels()));
  for (int l = 0; l < version_->emgard->num_levels(); ++l) {
    level_keys_.push_back(prefix + "/L" + std::to_string(l));
  }
}

std::string BatchedConstantsEstimator::KeyPrefix(
    const ModelVersion& version) {
  return VersionAuditId(version);  // "emgard@v<N>"
}

std::string BatchedConstantsEstimator::name() const {
  return "e-mgard@v" + std::to_string(version_->version);
}

Result<double> BatchedConstantsEstimator::TryEstimate(
    const RefactoredField& field, const std::vector<int>& prefix) const {
  MGARDP_CHECK_EQ(prefix.size(),
                  static_cast<std::size_t>(field.num_levels()));
  const EMgardModel& model = *version_->emgard;
  const int L = std::min(field.num_levels(), model.num_levels());

  // Same level selection and skip rule as LearnedConstantsEstimator; the
  // only difference is that all surviving levels' rows are in flight at
  // once (and, through the batcher, may share their forward pass with
  // rows from other sessions on the same key).
  struct InFlight {
    double level_err = 0.0;
    dnn::InferenceBatcher::Ticket ticket;
    double constant = 0.0;  // direct mode resolves immediately
  };
  std::vector<InFlight> in_flight;
  in_flight.reserve(static_cast<std::size_t>(L));
  Status submit_error;  // direct mode: first kernel failure
  for (int l = 0; l < L; ++l) {
    const auto& max_abs = field.level_errors[l].max_abs;
    const int b =
        std::clamp(prefix[l], 0, static_cast<int>(max_abs.size()) - 1);
    const double level_err = max_abs[b];
    if (level_err <= 0.0) {
      continue;
    }
    std::vector<double> row =
        model.BuildConstantInput(field.level_sketches[l], level_err, b);
    InFlight entry;
    entry.level_err = level_err;
    if (batcher_ != nullptr) {
      // The kernel captures the pinned version: a batch that flushes after
      // a hot swap still runs on the weights its rows were built for.
      std::shared_ptr<const ModelVersion> version = version_;
      entry.ticket = batcher_->SubmitAsync(
          level_keys_[static_cast<std::size_t>(l)], std::move(row),
          [version, l](const dnn::Matrix& inputs) {
            return version->emgard->PredictConstantKernel(l, inputs);
          });
    } else {
      const std::size_t width = row.size();  // before the move: evaluation
                                             // order of ctor args is
                                             // unspecified
      dnn::Matrix x(1, width, std::move(row));
      Result<dnn::Matrix> constants = model.PredictConstantKernel(l, x);
      if (!constants.ok()) {
        submit_error = constants.status();
        break;
      }
      entry.constant = constants.value()(0, 0);
    }
    in_flight.push_back(std::move(entry));
  }

  if (metrics_ != nullptr && !in_flight.empty()) {
    metrics_->OnInferenceRows(in_flight.size());
  }

  double est = 0.0;
  Status first_error = submit_error;
  for (InFlight& entry : in_flight) {
    if (batcher_ != nullptr) {
      Result<std::vector<double>> out = batcher_->Wait(entry.ticket);
      if (!out.ok()) {
        // Keep waiting out the remaining tickets (each must be consumed
        // exactly once) but report the first failure.
        if (first_error.ok()) {
          first_error = out.status();
        }
        continue;
      }
      entry.constant = out.value().front();
    }
    est += entry.constant * entry.level_err;
  }
  MGARDP_RETURN_NOT_OK(first_error);
  return est * model.safety_margin();
}

Result<std::vector<double>> BatchedConstantsEstimator::TryEstimateMany(
    const RefactoredField& field,
    const std::vector<std::vector<int>>& prefixes) const {
  std::vector<double> out(prefixes.size(), 0.0);
  if (batcher_ == nullptr) {
    // Direct mode keeps the pre-batching shape: one candidate at a time,
    // one single-row forward per surviving level.
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      MGARDP_ASSIGN_OR_RETURN(out[i], TryEstimate(field, prefixes[i]));
    }
    return out;
  }
  const EMgardModel& model = *version_->emgard;
  const int L = std::min(field.num_levels(), model.num_levels());
  // Submit every candidate's rows before awaiting any result: candidate i
  // and candidate j contribute rows to the same per-level keys, so the
  // burst fills batches without waiting on other sessions.
  struct InFlight {
    double level_err = 0.0;
    dnn::InferenceBatcher::Ticket ticket;
  };
  std::vector<std::vector<InFlight>> in_flight(prefixes.size());
  std::size_t total_rows = 0;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    const std::vector<int>& prefix = prefixes[i];
    MGARDP_CHECK_EQ(prefix.size(),
                    static_cast<std::size_t>(field.num_levels()));
    in_flight[i].reserve(static_cast<std::size_t>(L));
    for (int l = 0; l < L; ++l) {
      const auto& max_abs = field.level_errors[l].max_abs;
      const int b =
          std::clamp(prefix[l], 0, static_cast<int>(max_abs.size()) - 1);
      const double level_err = max_abs[b];
      if (level_err <= 0.0) {
        continue;
      }
      InFlight entry;
      entry.level_err = level_err;
      std::shared_ptr<const ModelVersion> version = version_;
      entry.ticket = batcher_->SubmitAsync(
          level_keys_[static_cast<std::size_t>(l)],
          model.BuildConstantInput(field.level_sketches[l], level_err, b),
          [version, l](const dnn::Matrix& inputs) {
            return version->emgard->PredictConstantKernel(l, inputs);
          });
      in_flight[i].push_back(std::move(entry));
      ++total_rows;
    }
  }
  if (metrics_ != nullptr && total_rows > 0) {
    metrics_->OnInferenceRows(total_rows);
  }
  Status first_error;
  for (std::size_t i = 0; i < prefixes.size(); ++i) {
    double est = 0.0;
    for (InFlight& entry : in_flight[i]) {
      Result<std::vector<double>> row = batcher_->Wait(entry.ticket);
      if (!row.ok()) {
        if (first_error.ok()) {
          first_error = row.status();
        }
        continue;  // every ticket must still be consumed exactly once
      }
      est += row.value().front() * entry.level_err;
    }
    out[i] = est * model.safety_margin();
  }
  MGARDP_RETURN_NOT_OK(first_error);
  return out;
}

double BatchedConstantsEstimator::Estimate(
    const RefactoredField& field, const std::vector<int>& prefix) const {
  auto result = TryEstimate(field, prefix);
  return result.ok() ? result.value()
                     : std::numeric_limits<double>::infinity();
}

EstimatorProvider MakeBatchedRegistryEstimatorProvider(
    ModelRegistry* registry, const std::string& model_id,
    dnn::InferenceBatcher* batcher, ServiceMetrics* metrics) {
  MGARDP_CHECK(batcher != nullptr);
  ServingHandle handle = registry->Handle(model_id);
  // Swap detection shared across all leases from this provider: whichever
  // lease first sees a new serving version flushes the old version's
  // queued rows (on their own pinned kernel).
  struct SwapWatch {
    std::mutex mu;
    int last_version = 0;
  };
  auto watch = std::make_shared<SwapWatch>();
  return [handle, batcher, metrics, watch]() -> EstimatorLease {
    std::shared_ptr<const ModelVersion> version = handle.load();
    if (version == nullptr || version->kind != ModelKind::kEMgard ||
        version->emgard == nullptr) {
      return EstimatorLease{};
    }
    int outgoing = 0;
    {
      std::lock_guard<std::mutex> lock(watch->mu);
      if (watch->last_version != 0 &&
          watch->last_version != version->version) {
        outgoing = watch->last_version;
      }
      watch->last_version = version->version;
    }
    if (outgoing != 0) {
      batcher->Drain("emgard@v" + std::to_string(outgoing));
    }
    EstimatorLease lease;
    lease.estimator = std::make_shared<BatchedConstantsEstimator>(
        version, batcher, metrics);
    lease.audit_model_id = VersionAuditId(*version);
    return lease;
  };
}

}  // namespace learning
}  // namespace mgardp
