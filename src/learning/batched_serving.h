// Batched serving of the learned error estimator.
//
// BatchedConstantsEstimator scores Equation 7 exactly like
// LearnedConstantsEstimator — same inputs, same per-level constants, same
// safety margin — but routes every per-level network evaluation through an
// InferenceBatcher, so rows from concurrent sessions coalesce into one
// multi-row forward pass per (model version, level). Results are
// bit-identical to the unbatched path: both run the same
// EMgardModel::PredictConstantKernel, whose math is row-independent.
//
// Version pinning: the batch key embeds the model version
// ("emgard@v<N>/L<level>"), so a registry hot swap can never mix two
// versions' rows in one batch, and each estimator holds its version's
// shared_ptr — queued rows of a swapped-out version still execute against
// the weights they were built for. The batched provider additionally
// drains the outgoing version's queue the moment it observes a swap, so
// stale rows flush immediately instead of waiting out their delay.

#ifndef MGARDP_LEARNING_BATCHED_SERVING_H_
#define MGARDP_LEARNING_BATCHED_SERVING_H_

#include <memory>
#include <string>

#include "dnn/batcher.h"
#include "learning/model_registry.h"
#include "learning/serving.h"
#include "progressive/error_estimator.h"
#include "service/retrieval_session.h"
#include "service/service_metrics.h"

namespace mgardp {
namespace learning {

// ErrorEstimator over one pinned E-MGARD ModelVersion whose network calls
// go through `batcher` (cross-request coalescing), or run directly when
// `batcher` is nullptr — the instrumented unbatched baseline. Safe to
// share across threads. Requires version->kind == kEMgard.
class BatchedConstantsEstimator : public ErrorEstimator {
 public:
  // `batcher` and `metrics` may each be nullptr and must outlive the
  // estimator when set.
  BatchedConstantsEstimator(std::shared_ptr<const ModelVersion> version,
                            dnn::InferenceBatcher* batcher,
                            ServiceMetrics* metrics = nullptr);

  double Estimate(const RefactoredField& field,
                  const std::vector<int>& prefix) const override;
  Result<double> TryEstimate(const RefactoredField& field,
                             const std::vector<int>& prefix) const override;
  // Scores a burst of candidate prefixes (one greedy planner step scores
  // num_levels of them; see Reconstructor::GreedyStep). With a batcher,
  // every candidate's rows are submitted before any result is awaited, so
  // one session fills per-level batches by itself — coalescing without
  // cross-session formation delay. Without a batcher, candidates are
  // scored sequentially (the pre-batching behavior). Element i is
  // TryEstimate(field, prefixes[i]) bit-identically.
  Result<std::vector<double>> TryEstimateMany(
      const RefactoredField& field,
      const std::vector<std::vector<int>>& prefixes) const;
  // "e-mgard@v<N>" — the batching layer changes scheduling, not results,
  // so the estimator identifies as its version.
  std::string name() const override;

  int version() const { return version_->version; }

  // The batch-key prefix of every row this version submits
  // ("emgard@v<N>"); Drain(KeyPrefix(v)) flushes exactly v's queue.
  static std::string KeyPrefix(const ModelVersion& version);

 private:
  std::shared_ptr<const ModelVersion> version_;
  dnn::InferenceBatcher* batcher_;  // nullptr: direct (unbatched) scoring
  ServiceMetrics* metrics_;         // nullptr: no accounting
  // "emgard@v<N>/L<l>" per model level, built once — key construction is
  // on the per-row submit path.
  std::vector<std::string> level_keys_;
};

// Session wiring, the batched counterpart of
// MakeRegistryEstimatorProvider: each new session pins the serving
// version and scores through `batcher`. When a provider call observes a
// version change, the outgoing version's queued rows are drained (on
// their own kernel) before the new lease is handed out. `registry`,
// `batcher`, and (when set) `metrics` must outlive every session using
// the provider.
EstimatorProvider MakeBatchedRegistryEstimatorProvider(
    ModelRegistry* registry, const std::string& model_id,
    dnn::InferenceBatcher* batcher, ServiceMetrics* metrics = nullptr);

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_BATCHED_SERVING_H_
