#include "learning/shadow.h"

#include <algorithm>

#include "obs/tracer.h"
#include "service/service_metrics.h"

namespace mgardp {
namespace learning {

ShadowEvaluator::ShadowEvaluator(ModelRegistry* registry,
                                 ServiceMetrics* metrics, Options options)
    : registry_(registry), metrics_(metrics), options_(options) {
  if (options_.window == 0) {
    options_.window = 1;
  }
  if (options_.probation_window == 0) {
    options_.probation_window = 1;
  }
}

Status ShadowEvaluator::StartShadow(const std::string& model_id,
                                    int version) {
  std::shared_ptr<const ModelVersion> candidate =
      registry_->Get(model_id, version);
  if (candidate == nullptr) {
    return Status::NotFound("shadow: no such candidate version");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Track& t = tracks_[model_id];
  if (t.state != State::kIdle) {
    return Status::FailedPrecondition(
        "shadow: evaluation already in progress for " + model_id);
  }
  t = Track{};
  t.state = State::kShadowing;
  t.candidate = version;
  t.candidate_model = std::move(candidate);
  return Status::OK();
}

ShadowEvaluator::State ShadowEvaluator::state(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tracks_.find(model_id);
  return it == tracks_.end() ? State::kIdle : it->second.state;
}

int ShadowEvaluator::candidate_version(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tracks_.find(model_id);
  return it == tracks_.end() || it->second.state != State::kShadowing
             ? 0
             : it->second.candidate;
}

std::shared_ptr<const ModelVersion> ShadowEvaluator::Candidate(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tracks_.find(model_id);
  return it == tracks_.end() || it->second.state != State::kShadowing
             ? nullptr
             : it->second.candidate_model;
}

ShadowEvaluator::Action ShadowEvaluator::Verdict(const std::string& model_id,
                                                 Track* t) {
  const double n = static_cast<double>(t->pairs);
  const double cand_rate =
      static_cast<double>(t->candidate_violations) / n;
  const double inc_rate =
      static_cast<double>(t->incumbent_violations) / n;
  const double cand_bytes = t->candidate_bytes / n;
  const double inc_bytes = t->incumbent_bytes / n;
  const bool honest = cand_rate <= inc_rate + options_.violation_epsilon;
  const bool frugal =
      inc_bytes <= 0.0 ||
      cand_bytes <= inc_bytes * options_.overfetch_slack;
  if (honest && frugal) {
    MGARDP_TRACE_SPAN("learning/promote", "learning");
    const Status promoted = registry_->Promote(model_id, t->candidate);
    if (!promoted.ok()) {
      // The version vanished (e.g. operator retired it); drop the run.
      t->state = State::kIdle;
      return Action::kRejected;
    }
    if (metrics_ != nullptr) {
      metrics_->OnModelPromoted();
    }
    ++stats_.promotions;
    t->state = State::kProbation;
    t->shadow_violation_rate = cand_rate;
    t->probation_seen = 0;
    t->probation_violations = 0;
    t->candidate_model = nullptr;
    return Action::kPromoted;
  }
  {
    const Status retired = registry_->Retire(model_id, t->candidate);
    (void)retired;
  }
  if (metrics_ != nullptr) {
    metrics_->OnCandidateRejected();
  }
  ++stats_.rejections;
  *t = Track{};
  return Action::kRejected;
}

ShadowEvaluator::Action ShadowEvaluator::ObservePair(
    const std::string& model_id, const ShadowScore& incumbent,
    const ShadowScore& candidate) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tracks_.find(model_id);
  if (it == tracks_.end() || it->second.state != State::kShadowing) {
    return Action::kNone;
  }
  Track& t = it->second;
  // Only ground-truthed pairs can speak to bound honesty; estimate-only
  // traffic would count every request as satisfied for both sides.
  if (!incumbent.has_actual || !candidate.has_actual) {
    return Action::kNone;
  }
  ++t.pairs;
  ++stats_.shadow_pairs;
  t.incumbent_violations += incumbent.violation ? 1 : 0;
  t.candidate_violations += candidate.violation ? 1 : 0;
  t.incumbent_bytes += static_cast<double>(incumbent.bytes);
  t.candidate_bytes += static_cast<double>(candidate.bytes);
  if (metrics_ != nullptr) {
    metrics_->OnShadowPair(
        incumbent.bytes == 0
            ? 0.0
            : static_cast<double>(candidate.bytes) /
                  static_cast<double>(incumbent.bytes));
  }
  if (t.pairs < options_.window) {
    return Action::kNone;
  }
  return Verdict(model_id, &t);
}

ShadowEvaluator::Action ShadowEvaluator::ObserveServing(
    const std::string& model_id, const ShadowScore& serving) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tracks_.find(model_id);
  if (it == tracks_.end() || it->second.state != State::kProbation) {
    return Action::kNone;
  }
  Track& t = it->second;
  if (!serving.has_actual) {
    return Action::kNone;
  }
  ++t.probation_seen;
  t.probation_violations += serving.violation ? 1 : 0;
  if (t.probation_seen < options_.probation_window) {
    return Action::kNone;
  }
  const double rate = static_cast<double>(t.probation_violations) /
                      static_cast<double>(t.probation_seen);
  const double threshold =
      std::max(options_.rollback_floor,
               options_.rollback_factor * t.shadow_violation_rate);
  if (rate > threshold) {
    MGARDP_TRACE_SPAN("learning/rollback", "learning");
    {
      const Status rolled = registry_->Rollback(model_id);
      (void)rolled;
    }
    if (metrics_ != nullptr) {
      metrics_->OnModelRolledBack();
    }
    ++stats_.rollbacks;
    t = Track{};
    return Action::kRolledBack;
  }
  // Probation served clean; the promotion sticks.
  t = Track{};
  return Action::kNone;
}

ShadowEvaluator::Stats ShadowEvaluator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace learning
}  // namespace mgardp
