#include "learning/background_trainer.h"

#include <utility>
#include <vector>

#include "obs/tracer.h"
#include "service/service_metrics.h"

namespace mgardp {
namespace learning {

BackgroundTrainer::BackgroundTrainer(TrainingSetCollector* collector,
                                     ModelRegistry* registry,
                                     ShadowEvaluator* shadow,
                                     obs::ErrorControlAuditor* auditor,
                                     ServiceMetrics* metrics, Options options)
    : collector_(collector),
      registry_(registry),
      shadow_(shadow),
      auditor_(auditor),
      metrics_(metrics),
      options_(std::move(options)) {}

BackgroundTrainer::~BackgroundTrainer() { Stop(); }

bool BackgroundTrainer::ShouldTrain() const {
  if (collector_->RowCount(options_.model_id) < options_.min_rows) {
    return false;
  }
  if (shadow_ != nullptr &&
      shadow_->state(options_.model_id) != ShadowEvaluator::State::kIdle) {
    return false;  // a candidate is already being judged
  }
  std::uint64_t baseline = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    baseline = trained_at_accepted_;
  }
  const std::uint64_t accepted = collector_->accepted(options_.model_id);
  if (options_.watermark > 0 && accepted >= baseline + options_.watermark) {
    return true;
  }
  if (options_.on_drift && auditor_ != nullptr &&
      accepted >= baseline + options_.drift_cooldown_rows) {
    const obs::ErrorControlAuditor::Snapshot snap = auditor_->snapshot();
    for (const auto& model : snap.models) {
      if (BaseModelId(model.model) == options_.model_id &&
          model.drift_alert()) {
        return true;
      }
    }
  }
  return false;
}

Result<int> BackgroundTrainer::RunOnce() {
  if (!ShouldTrain()) {
    return 0;
  }
  return TrainNow();
}

Result<int> BackgroundTrainer::TrainNow() {
  MGARDP_TRACE_SPAN("learning/train", "learning");
  const std::vector<RetrievalRecord> rows =
      collector_->Rows(options_.model_id);
  if (rows.size() < options_.min_rows) {
    return Status::FailedPrecondition(
        "background trainer: not enough rows for " + options_.model_id);
  }
  const std::uint64_t accepted_now = collector_->accepted(options_.model_id);

  std::string blob;
  const bool is_emgard =
      options_.model_id.find("emgard") != std::string::npos;
  if (is_emgard) {
    EMgardConfig config = options_.emgard;
    config.train.log_fn = options_.log_fn;
    MGARDP_ASSIGN_OR_RETURN(EMgardModel model,
                            EMgardModel::TrainModel(rows, config));
    blob = model.Serialize();
  } else {
    DMgardConfig config = options_.dmgard;
    config.train.log_fn = options_.log_fn;
    MGARDP_ASSIGN_OR_RETURN(DMgardModel model,
                            DMgardModel::TrainModel(rows, config));
    blob = model.Serialize();
  }

  MGARDP_ASSIGN_OR_RETURN(int version,
                          registry_->Publish(options_.model_id,
                                             std::move(blob)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++retrains_;
    trained_at_accepted_ = accepted_now;
  }
  if (metrics_ != nullptr) {
    metrics_->OnRetrain();
  }
  if (options_.log_fn) {
    options_.log_fn("published " + options_.model_id + " v" +
                    std::to_string(version) + " (" +
                    std::to_string(rows.size()) + " rows)");
  }
  if (shadow_ != nullptr) {
    MGARDP_RETURN_NOT_OK(shadow_->StartShadow(options_.model_id, version));
  }
  return version;
}

void BackgroundTrainer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  running_ = true;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (running_) {
      lock.unlock();
      if (ShouldTrain()) {
        const Result<int> trained = TrainNow();
        if (!trained.ok() && options_.log_fn) {
          options_.log_fn("refit failed: " +
                          trained.status().ToString());
        }
      }
      lock.lock();
      cv_.wait_for(lock, options_.poll, [this] { return !running_; });
    }
  });
}

void BackgroundTrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && !thread_.joinable()) {
      return;
    }
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::uint64_t BackgroundTrainer::retrains() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retrains_;
}

}  // namespace learning
}  // namespace mgardp
