// Registry-backed serving adapters: the glue between the versioned
// ModelRegistry and the prediction surfaces the rest of the stack already
// speaks.
//
//   * VersionedEstimator wraps one pinned E-MGARD ModelVersion as an
//     ErrorEstimator. The wrapper owns the version's shared_ptr — holding
//     the estimator holds the epoch, so a hot swap in the registry can
//     never free weights out from under a planner mid-request.
//   * MakeRegistryEstimatorProvider turns a registry slot into the
//     EstimatorProvider a RetrievalSession consumes: each new session
//     takes one lock-free slot load, pins whatever version is serving at
//     that instant, and audits as "<model>@v<N>" so the audit layer can
//     attribute violations to the concrete version that caused them.
//   * PlanWithModelVersion plans a one-shot retrieval with any version
//     (D-MGARD prefix prediction or E-MGARD greedy search) — the shared
//     path for shadow scoring, benches, and the CLI.

#ifndef MGARDP_LEARNING_SERVING_H_
#define MGARDP_LEARNING_SERVING_H_

#include <memory>
#include <string>

#include "learning/model_registry.h"
#include "models/emgard.h"
#include "progressive/error_estimator.h"
#include "progressive/reconstructor.h"
#include "service/retrieval_session.h"

namespace mgardp {
namespace learning {

// An ErrorEstimator view of one E-MGARD ModelVersion. Immutable; safe to
// share across threads. Construction requires version->kind == kEMgard.
class VersionedEstimator : public ErrorEstimator {
 public:
  explicit VersionedEstimator(std::shared_ptr<const ModelVersion> version);

  double Estimate(const RefactoredField& field,
                  const std::vector<int>& prefix) const override;
  Result<double> TryEstimate(const RefactoredField& field,
                             const std::vector<int>& prefix) const override;
  // "e-mgard@v<N>".
  std::string name() const override;

  int version() const { return version_->version; }

 private:
  std::shared_ptr<const ModelVersion> version_;
  LearnedConstantsEstimator estimator_;
};

// Session wiring: returns a provider that, when a session first refines,
// loads the serving version from the registry's lock-free slot and pins it
// for the session's life. When nothing is serving yet (or the serving
// version is not an E-MGARD model), the lease is empty and the session
// falls back to its constructor estimator. The registry must outlive every
// session using the provider.
EstimatorProvider MakeRegistryEstimatorProvider(ModelRegistry* registry,
                                                const std::string& model_id);

// Plans a cold retrieval of `field` at `bound` with a specific version:
// D-MGARD versions predict the bit-plane prefix directly (estimated_error
// reports the bound, the model's implicit claim, matching the CLI's
// convention); E-MGARD versions run the greedy planner under the learned
// estimator. Used for shadow scoring and the retrain bench.
Result<RetrievalPlan> PlanWithModelVersion(const RefactoredField& field,
                                           double bound,
                                           const ModelVersion& version);

// The audit id for a version: "<base>@v<N>" with the estimator-style base
// ("e-mgard" normalizes to "emgard") so BaseModelId round-trips to the
// registry key.
std::string VersionAuditId(const ModelVersion& version);

}  // namespace learning
}  // namespace mgardp

#endif  // MGARDP_LEARNING_SERVING_H_
