#include "decompose/interleaver.h"

#include <sstream>

#include "util/parallel.h"

namespace mgardp {

namespace {

// Lattice extent of an axis of physical extent n at stride s.
std::size_t LatticeExtent(std::size_t n, std::size_t s) {
  return n == 1 ? 1 : (n - 1) / s + 1;
}

}  // namespace

// Enumerates the nodes of one level in the canonical (i, j, k)-ascending
// order, invoking fn(index_within_level, i, j, k). The outer i-slabs hold
// computable node counts, so slabs are assigned fixed output offsets and
// fan out across the thread pool; `index_within_level` is identical to the
// position a serial sweep would produce, which keeps the coefficient stream
// layout independent of the thread count.
template <typename Fn>
void Interleaver::ForEachNodeInLevel(int level, Fn&& fn) const {
  const Dims3& dims = hierarchy_.dims();
  const int num_steps = hierarchy_.num_steps();

  if (level == 0) {
    // Level 0: every node on the coarsest lattice (stride 2^K).
    const std::size_t s0 = std::size_t{1} << num_steps;
    const std::size_t lnx = LatticeExtent(dims.nx, s0);
    const std::size_t lny = LatticeExtent(dims.ny, s0);
    const std::size_t lnz = LatticeExtent(dims.nz, s0);
    const std::size_t slab = lny * lnz;
    const std::size_t grain = std::max<std::size_t>(1, 2048 / std::max<std::size_t>(slab, 1));
    ParallelFor(0, lnx, grain, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t ii = lo; ii < hi; ++ii) {
        const std::size_t i = dims.nx == 1 ? 0 : ii * s0;
        std::size_t c = ii * slab;
        for (std::size_t jj = 0; jj < lny; ++jj) {
          const std::size_t j = dims.ny == 1 ? 0 : jj * s0;
          for (std::size_t kk = 0; kk < lnz; ++kk) {
            const std::size_t k = dims.nz == 1 ? 0 : kk * s0;
            fn(c++, i, j, k);
          }
        }
      }
    });
    return;
  }

  // Level l >= 1: nodes on the stride-2^(K-l) lattice with at least one odd
  // lattice index. Per i-slab the node count is closed-form: odd slabs take
  // the whole (j, k) lattice, even slabs everything except the all-even
  // sublattice.
  const std::size_t s = std::size_t{1} << (num_steps - level);
  const std::size_t lnx = LatticeExtent(dims.nx, s);
  const std::size_t lny = LatticeExtent(dims.ny, s);
  const std::size_t lnz = LatticeExtent(dims.nz, s);
  const std::size_t cny = (lny + 1) / 2;  // even lattice indices (or axis==1)
  const std::size_t cnz = (lnz + 1) / 2;
  const std::size_t full = lny * lnz;
  const std::size_t partial = full - cny * cnz;
  std::vector<std::size_t> offset(lnx + 1, 0);
  for (std::size_t ii = 0; ii < lnx; ++ii) {
    const bool oi = dims.nx > 1 && (ii & 1) != 0;
    offset[ii + 1] = offset[ii] + (oi ? full : partial);
  }
  const std::size_t grain = std::max<std::size_t>(1, 2048 / std::max<std::size_t>(full, 1));
  ParallelFor(0, lnx, grain, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t ii = lo; ii < hi; ++ii) {
      const bool oi = dims.nx > 1 && (ii & 1) != 0;
      const std::size_t i = dims.nx == 1 ? 0 : ii * s;
      std::size_t c = offset[ii];
      for (std::size_t jj = 0; jj < lny; ++jj) {
        const bool oj = dims.ny > 1 && (jj & 1) != 0;
        const std::size_t j = dims.ny == 1 ? 0 : jj * s;
        for (std::size_t kk = 0; kk < lnz; ++kk) {
          const bool ok = dims.nz > 1 && (kk & 1) != 0;
          const std::size_t k = dims.nz == 1 ? 0 : kk * s;
          if (oi || oj || ok) {
            fn(c++, i, j, k);
          }
        }
      }
    }
  });
}

std::vector<std::vector<double>> Interleaver::Extract(
    const Array3Dd& data) const {
  MGARDP_CHECK(data.dims() == hierarchy_.dims());
  std::vector<std::vector<double>> levels(hierarchy_.num_levels());
  for (int l = 0; l < hierarchy_.num_levels(); ++l) {
    levels[l].resize(hierarchy_.LevelSize(l));
    std::vector<double>& out = levels[l];
    ForEachNodeInLevel(
        l, [&](std::size_t idx, std::size_t i, std::size_t j, std::size_t k) {
          out[idx] = data(i, j, k);
        });
  }
  return levels;
}

Status Interleaver::Deposit(const std::vector<std::vector<double>>& levels,
                            Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims do not match hierarchy");
  }
  if (static_cast<int>(levels.size()) != hierarchy_.num_levels()) {
    std::ostringstream os;
    os << "expected " << hierarchy_.num_levels() << " levels, got "
       << levels.size();
    return Status::Invalid(os.str());
  }
  for (int l = 0; l < hierarchy_.num_levels(); ++l) {
    if (levels[l].size() != hierarchy_.LevelSize(l)) {
      std::ostringstream os;
      os << "level " << l << " has " << levels[l].size()
         << " coefficients, expected " << hierarchy_.LevelSize(l);
      return Status::Invalid(os.str());
    }
  }
  for (int l = 0; l < hierarchy_.num_levels(); ++l) {
    const std::vector<double>& in = levels[l];
    ForEachNodeInLevel(
        l, [&](std::size_t idx, std::size_t i, std::size_t j, std::size_t k) {
          (*data)(i, j, k) = in[idx];
        });
  }
  return Status::OK();
}

}  // namespace mgardp
