#include "decompose/interleaver.h"

#include <sstream>

namespace mgardp {

template <typename Fn>
void Interleaver::ForEachNode(Fn&& fn) const {
  const Dims3& dims = hierarchy_.dims();
  const int num_steps = hierarchy_.num_steps();

  // Level 0: nodes on the coarsest lattice (stride 2^K along active axes).
  const std::size_t s0 = std::size_t{1} << num_steps;
  auto top = [&](std::size_t n) { return n == 1 ? std::size_t{1} : s0; };
  for (std::size_t i = 0; i < dims.nx; i += top(dims.nx)) {
    for (std::size_t j = 0; j < dims.ny; j += top(dims.ny)) {
      for (std::size_t k = 0; k < dims.nz; k += top(dims.nz)) {
        fn(0, i, j, k);
      }
    }
  }

  // Level l >= 1: nodes on the stride-2^(K-l) lattice with at least one odd
  // lattice index.
  for (int level = 1; level <= num_steps; ++level) {
    const std::size_t s = std::size_t{1} << (num_steps - level);
    auto st = [&](std::size_t n) { return n == 1 ? std::size_t{1} : s; };
    const std::size_t sx = st(dims.nx), sy = st(dims.ny), sz = st(dims.nz);
    for (std::size_t i = 0; i < dims.nx; i += sx) {
      const bool oi = dims.nx > 1 && ((i / s) & 1) != 0;
      for (std::size_t j = 0; j < dims.ny; j += sy) {
        const bool oj = dims.ny > 1 && ((j / s) & 1) != 0;
        for (std::size_t k = 0; k < dims.nz; k += sz) {
          const bool ok = dims.nz > 1 && ((k / s) & 1) != 0;
          if (oi || oj || ok) {
            fn(level, i, j, k);
          }
        }
      }
    }
  }
}

std::vector<std::vector<double>> Interleaver::Extract(
    const Array3Dd& data) const {
  MGARDP_CHECK(data.dims() == hierarchy_.dims());
  std::vector<std::vector<double>> levels(hierarchy_.num_levels());
  for (int l = 0; l < hierarchy_.num_levels(); ++l) {
    levels[l].reserve(hierarchy_.LevelSize(l));
  }
  ForEachNode([&](int level, std::size_t i, std::size_t j, std::size_t k) {
    levels[level].push_back(data(i, j, k));
  });
  return levels;
}

Status Interleaver::Deposit(const std::vector<std::vector<double>>& levels,
                            Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims do not match hierarchy");
  }
  if (static_cast<int>(levels.size()) != hierarchy_.num_levels()) {
    std::ostringstream os;
    os << "expected " << hierarchy_.num_levels() << " levels, got "
       << levels.size();
    return Status::Invalid(os.str());
  }
  for (int l = 0; l < hierarchy_.num_levels(); ++l) {
    if (levels[l].size() != hierarchy_.LevelSize(l)) {
      std::ostringstream os;
      os << "level " << l << " has " << levels[l].size()
         << " coefficients, expected " << hierarchy_.LevelSize(l);
      return Status::Invalid(os.str());
    }
  }
  std::vector<std::size_t> cursor(levels.size(), 0);
  ForEachNode([&](int level, std::size_t i, std::size_t j, std::size_t k) {
    (*data)(i, j, k) = levels[level][cursor[level]++];
  });
  return Status::OK();
}

}  // namespace mgardp
