// MGARD-style multilevel decomposition and recomposition.
//
// The forward transform repeatedly (a) replaces the values at odd lattice
// positions with interpolation residuals ("detail coefficients") and (b)
// applies an L2 projection correction to the remaining coarse values, axis
// by axis (tensor-product lifting). Step (b) solves the coarse-grid
// finite-element mass-matrix system with the Thomas algorithm, exactly as in
// the uniform-grid case of Ainsworth et al. (SISC 2019); it makes the coarse
// approximation the L2-optimal one instead of plain subsampling, which is
// what gives MGARD its multilevel accuracy. The transform is exactly
// invertible in the absence of quantization because the correction depends
// only on the (stored) detail coefficients.

#ifndef MGARDP_DECOMPOSE_DECOMPOSER_H_
#define MGARDP_DECOMPOSE_DECOMPOSER_H_

#include <vector>

#include "decompose/hierarchy.h"
#include "util/array3d.h"
#include "util/status.h"

namespace mgardp {

struct DecomposeOptions {
  // Apply the L2 projection correction (true = MGARD; false = plain
  // interpolation wavelet, kept for the ablation bench).
  bool use_correction = true;
};

class Decomposer {
 public:
  Decomposer(GridHierarchy hierarchy, DecomposeOptions options = {})
      : hierarchy_(std::move(hierarchy)), options_(options) {}

  const GridHierarchy& hierarchy() const { return hierarchy_; }

  // Transforms `data` in place into multilevel coefficients. `data`'s dims
  // must match the hierarchy.
  Status Decompose(Array3Dd* data) const;

  // Inverse of Decompose.
  Status Recompose(Array3Dd* data) const;

 private:
  GridHierarchy hierarchy_;
  DecomposeOptions options_;
};

namespace internal {

// 1D lifting primitives operating on a contiguous scratch line of odd
// length m >= 3. Exposed for unit testing.
//
// Forward: odd entries become interpolation residuals; if `correct`, even
// entries receive the L2 projection correction.
void ForwardLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch);
// Exact inverse of ForwardLine.
void InverseLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch);

// Solves the tridiagonal coarse-grid mass-matrix system M w = b in place
// (b becomes w). The matrix is (H/6) * tridiag(1, 4, 1) with halved diagonal
// at the two boundary rows, H = 2 (coarse spacing in units of the fine one).
void SolveCoarseMass(double* b, std::size_t mc, std::vector<double>* scratch);

}  // namespace internal

}  // namespace mgardp

#endif  // MGARDP_DECOMPOSE_DECOMPOSER_H_
