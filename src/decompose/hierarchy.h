// Multilevel grid hierarchy for MGARD-style decomposition.
//
// The decomposer operates on grids whose extents are 2^k + 1 along every
// active axis (axes of extent 1 are inactive and simply carried along, so 1D
// and 2D data are the degenerate cases of the 3D machinery). A hierarchy of
// K decomposition steps partitions the nodes into K + 1 coefficient levels:
//
//   level 0      -- the coarsest approximation nodes (stride 2^K lattice,
//                   "highest level with the lowest resolution" in the paper),
//   level l >= 1 -- the detail coefficients introduced when refining from
//                   stride 2^(K-l+1) to stride 2^(K-l).
//
// Level K therefore holds the most coefficients (all nodes with an odd index
// on the finest lattice), matching Fig. 5 of the paper where the finest
// level dominates the retrieved bytes.

#ifndef MGARDP_DECOMPOSE_HIERARCHY_H_
#define MGARDP_DECOMPOSE_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "util/array3d.h"
#include "util/status.h"

namespace mgardp {

// Returns true if n == 2^k + 1 for some k >= 1, or n == 1 (inactive axis).
bool IsValidExtent(std::size_t n);

// Number of decomposition steps supported by extent n (k for n = 2^k + 1,
// and effectively unlimited for n == 1 since the axis is skipped).
int MaxStepsForExtent(std::size_t n);

struct HierarchyOptions {
  // Number of decomposition steps K. -1 means "as many as the grid allows,
  // capped at kDefaultMaxSteps" (the paper's experiments use a 5-level
  // hierarchy, i.e. 4 steps).
  int target_steps = -1;

  static constexpr int kDefaultMaxSteps = 4;
};

// Immutable description of a grid's multilevel structure.
class GridHierarchy {
 public:
  // Constructs an empty placeholder (0 steps, empty grid); only useful as a
  // deserialization target. All real hierarchies come from Create().
  GridHierarchy() : dims_{0, 0, 0} {}

  // Validates `dims` (every axis 2^k+1 or 1, at least one active axis) and
  // the requested step count.
  static Result<GridHierarchy> Create(Dims3 dims,
                                      HierarchyOptions options = {});

  const Dims3& dims() const { return dims_; }
  // Number of decomposition steps K.
  int num_steps() const { return num_steps_; }
  // Number of coefficient levels L = K + 1.
  int num_levels() const { return num_steps_ + 1; }

  // Node stride on the finest grid for decomposition step t (0-based,
  // t = 0 acts on the finest lattice).
  std::size_t StrideForStep(int step) const;

  // Extents of the active lattice before decomposition step t (i.e. the
  // lattice the step refines *to* when recomposing).
  Dims3 LatticeDims(int step) const;

  // Number of coefficients on coefficient level `level` (0 = coarsest).
  std::size_t LevelSize(int level) const { return level_sizes_[level]; }

  // Total number of nodes.
  std::size_t TotalSize() const { return dims_.size(); }

 private:
  GridHierarchy(Dims3 dims, int num_steps);

  Dims3 dims_;
  int num_steps_ = 0;
  std::vector<std::size_t> level_sizes_;
};

}  // namespace mgardp

#endif  // MGARDP_DECOMPOSE_HIERARCHY_H_
