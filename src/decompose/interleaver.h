// Extraction of per-level coefficient streams from a decomposed grid.
//
// After decomposition the grid holds coarse values (all indices even on the
// final lattice) and detail coefficients interleaved in place. The
// interleaver linearizes each coefficient level to a contiguous 1D array in
// a deterministic scan order so the bit-plane encoder can treat levels
// independently, and deposits decoded coefficients back for recomposition.

#ifndef MGARDP_DECOMPOSE_INTERLEAVER_H_
#define MGARDP_DECOMPOSE_INTERLEAVER_H_

#include <vector>

#include "decompose/hierarchy.h"
#include "util/array3d.h"
#include "util/status.h"

namespace mgardp {

class Interleaver {
 public:
  explicit Interleaver(GridHierarchy hierarchy)
      : hierarchy_(std::move(hierarchy)) {}

  const GridHierarchy& hierarchy() const { return hierarchy_; }

  // Returns one contiguous coefficient vector per level, level 0 first.
  std::vector<std::vector<double>> Extract(const Array3Dd& data) const;

  // Writes per-level coefficient vectors back into grid positions. Vectors
  // must have the exact per-level sizes of the hierarchy.
  Status Deposit(const std::vector<std::vector<double>>& levels,
                 Array3Dd* data) const;

 private:
  // Invokes fn(index_within_level, i, j, k) for every node of `level`, in
  // the canonical (i, j, k)-ascending order. Outer i-slabs run on the
  // shared thread pool; the index argument is scheduling-independent.
  template <typename Fn>
  void ForEachNodeInLevel(int level, Fn&& fn) const;

  GridHierarchy hierarchy_;
};

}  // namespace mgardp

#endif  // MGARDP_DECOMPOSE_INTERLEAVER_H_
