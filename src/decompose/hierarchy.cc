#include "decompose/hierarchy.h"

#include <algorithm>
#include <sstream>

namespace mgardp {

bool IsValidExtent(std::size_t n) {
  if (n == 1) {
    return true;
  }
  if (n < 3) {
    return false;
  }
  const std::size_t m = n - 1;
  return (m & (m - 1)) == 0;  // power of two
}

int MaxStepsForExtent(std::size_t n) {
  if (n == 1) {
    return 1 << 30;  // inactive axis never limits the step count
  }
  int k = 0;
  std::size_t m = n - 1;
  while (m > 1) {
    m >>= 1;
    ++k;
  }
  return k;
}

Result<GridHierarchy> GridHierarchy::Create(Dims3 dims,
                                            HierarchyOptions options) {
  if (dims.size() == 0) {
    return Status::Invalid("empty grid");
  }
  for (std::size_t n : {dims.nx, dims.ny, dims.nz}) {
    if (!IsValidExtent(n)) {
      std::ostringstream os;
      os << "grid extent " << n
         << " is not of the form 2^k+1 (k >= 1) or 1; got dims "
         << dims.ToString();
      return Status::Invalid(os.str());
    }
  }
  if (dims.dimensionality() == 0) {
    return Status::Invalid("grid must have at least one axis of extent > 1");
  }
  int max_steps = std::min({MaxStepsForExtent(dims.nx),
                            MaxStepsForExtent(dims.ny),
                            MaxStepsForExtent(dims.nz)});
  int steps;
  if (options.target_steps < 0) {
    steps = std::min(max_steps, HierarchyOptions::kDefaultMaxSteps);
  } else {
    if (options.target_steps == 0) {
      return Status::Invalid("target_steps must be >= 1");
    }
    if (options.target_steps > max_steps) {
      std::ostringstream os;
      os << "target_steps " << options.target_steps << " exceeds the " <<
          max_steps << " steps supported by dims " << dims.ToString();
      return Status::Invalid(os.str());
    }
    steps = options.target_steps;
  }
  return GridHierarchy(dims, steps);
}

GridHierarchy::GridHierarchy(Dims3 dims, int num_steps)
    : dims_(dims), num_steps_(num_steps) {
  // Lattice node count at stride 2^t along one axis of extent n.
  auto lattice_extent = [](std::size_t n, int t) -> std::size_t {
    if (n == 1) {
      return 1;
    }
    return ((n - 1) >> t) + 1;
  };
  auto lattice_size = [&](int t) -> std::size_t {
    return lattice_extent(dims_.nx, t) * lattice_extent(dims_.ny, t) *
           lattice_extent(dims_.nz, t);
  };
  level_sizes_.resize(num_steps_ + 1);
  level_sizes_[0] = lattice_size(num_steps_);
  for (int level = 1; level <= num_steps_; ++level) {
    // Level l coefficients: nodes present at stride 2^(K-l) but not at
    // stride 2^(K-l+1).
    level_sizes_[level] =
        lattice_size(num_steps_ - level) - lattice_size(num_steps_ - level + 1);
  }
}

std::size_t GridHierarchy::StrideForStep(int step) const {
  MGARDP_CHECK(step >= 0 && step < num_steps_);
  return std::size_t{1} << step;
}

Dims3 GridHierarchy::LatticeDims(int step) const {
  MGARDP_CHECK(step >= 0 && step <= num_steps_);
  auto ext = [&](std::size_t n) -> std::size_t {
    return n == 1 ? 1 : ((n - 1) >> step) + 1;
  };
  return Dims3{ext(dims_.nx), ext(dims_.ny), ext(dims_.nz)};
}

}  // namespace mgardp
