#include "decompose/decomposer.h"

#include <cstddef>

#include "util/parallel.h"

namespace mgardp {
namespace internal {

void SolveCoarseMass(double* b, std::size_t mc, std::vector<double>* scratch) {
  // Mass matrix of linear hats on a uniform coarse grid with spacing H = 2:
  //   interior rows: [H/6, 4H/6, H/6], boundary rows: [2H/6, H/6].
  MGARDP_DCHECK(mc >= 2);
  constexpr double kH = 2.0;
  const double off = kH / 6.0;
  const double diag_int = 4.0 * kH / 6.0;
  const double diag_bnd = 2.0 * kH / 6.0;

  // Thomas algorithm. scratch holds the modified upper-diagonal factors.
  scratch->resize(mc);
  std::vector<double>& c = *scratch;
  double diag0 = diag_bnd;
  c[0] = off / diag0;
  b[0] /= diag0;
  for (std::size_t i = 1; i < mc; ++i) {
    const double diag = (i + 1 == mc) ? diag_bnd : diag_int;
    const double denom = diag - off * c[i - 1];
    c[i] = off / denom;
    b[i] = (b[i] - off * b[i - 1]) / denom;
  }
  for (std::size_t i = mc - 1; i-- > 0;) {
    b[i] -= c[i] * b[i + 1];
  }
}

namespace {

// Computes the coarse-grid load vector of the detail function: each detail
// hat at odd position 2I +- 1 overlaps coarse hat I with integral h/2
// (h = 1, the fine spacing).
void DetailLoadVector(const double* u, std::size_t m, double* b) {
  const std::size_t mc = (m + 1) / 2;
  for (std::size_t i = 0; i < mc; ++i) {
    double load = 0.0;
    if (i > 0) {
      load += u[2 * i - 1];
    }
    if (2 * i + 1 < m) {
      load += u[2 * i + 1];
    }
    b[i] = 0.5 * load;
  }
}

}  // namespace

void ForwardLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  // Predict: odd entries become interpolation residuals.
  for (std::size_t p = 1; p < m; p += 2) {
    u[p] -= 0.5 * (u[p - 1] + u[p + 1]);
  }
  if (!correct) {
    return;
  }
  // Update: L2 projection correction on the even (coarse) entries.
  const std::size_t mc = (m + 1) / 2;
  scratch->resize(2 * mc);
  double* b = scratch->data();
  std::vector<double> thomas;
  DetailLoadVector(u, m, b);
  SolveCoarseMass(b, mc, &thomas);
  for (std::size_t i = 0; i < mc; ++i) {
    u[2 * i] += b[i];
  }
}

void InverseLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  if (correct) {
    const std::size_t mc = (m + 1) / 2;
    scratch->resize(2 * mc);
    double* b = scratch->data();
    std::vector<double> thomas;
    DetailLoadVector(u, m, b);
    SolveCoarseMass(b, mc, &thomas);
    for (std::size_t i = 0; i < mc; ++i) {
      u[2 * i] -= b[i];
    }
  }
  for (std::size_t p = 1; p < m; p += 2) {
    u[p] += 0.5 * (u[p - 1] + u[p + 1]);
  }
}

}  // namespace internal

namespace {

// Applies `forward ? ForwardLine : InverseLine` along `axis` (0 = x, 1 = y,
// 2 = z) over every line of the active lattice at `stride`.
void TransformAxis(Array3Dd* data, std::size_t stride, int axis, bool forward,
                   bool correct) {
  const Dims3& dims = data->dims();
  const std::size_t ext[3] = {dims.nx, dims.ny, dims.nz};
  // Active lattice extents.
  auto lat = [&](int a) -> std::size_t {
    return ext[a] == 1 ? 1 : (ext[a] - 1) / stride + 1;
  };
  const std::size_t m = lat(axis);
  if (m < 3) {
    return;  // axis inactive or already at its coarsest
  }
  const int o1 = (axis == 0) ? 1 : 0;
  const int o2 = (axis == 2) ? 1 : 2;
  const std::size_t n1 = lat(o1);
  const std::size_t n2 = lat(o2);

  // Lines along `axis` touch disjoint lattice sites for distinct (a, b), so
  // they solve independently across the pool; each chunk keeps its own line
  // and Thomas scratch buffers.
  const std::size_t lines_per_chunk = std::max<std::size_t>(1, 2048 / m);
  ParallelFor(0, n1 * n2, lines_per_chunk,
              [&](std::size_t lo, std::size_t hi) {
    std::vector<double> line(m);
    std::vector<double> scratch;
    std::size_t idx[3];
    for (std::size_t t = lo; t < hi; ++t) {
      const std::size_t a = t / n2;
      const std::size_t b = t % n2;
      idx[o1] = a * stride * (ext[o1] == 1 ? 0 : 1);
      idx[o2] = b * stride * (ext[o2] == 1 ? 0 : 1);
      // Gather the strided line into contiguous scratch.
      for (std::size_t p = 0; p < m; ++p) {
        idx[axis] = p * stride;
        line[p] = (*data)(idx[0], idx[1], idx[2]);
      }
      if (forward) {
        internal::ForwardLine(line.data(), m, correct, &scratch);
      } else {
        internal::InverseLine(line.data(), m, correct, &scratch);
      }
      for (std::size_t p = 0; p < m; ++p) {
        idx[axis] = p * stride;
        (*data)(idx[0], idx[1], idx[2]) = line[p];
      }
    }
  });
}

}  // namespace

Status Decomposer::Decompose(Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims " + data->dims().ToString() +
                           " do not match hierarchy dims " +
                           hierarchy_.dims().ToString());
  }
  for (int step = 0; step < hierarchy_.num_steps(); ++step) {
    const std::size_t stride = hierarchy_.StrideForStep(step);
    for (int axis = 0; axis < 3; ++axis) {
      TransformAxis(data, stride, axis, /*forward=*/true,
                    options_.use_correction);
    }
  }
  return Status::OK();
}

Status Decomposer::Recompose(Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims " + data->dims().ToString() +
                           " do not match hierarchy dims " +
                           hierarchy_.dims().ToString());
  }
  for (int step = hierarchy_.num_steps() - 1; step >= 0; --step) {
    const std::size_t stride = hierarchy_.StrideForStep(step);
    for (int axis = 2; axis >= 0; --axis) {
      TransformAxis(data, stride, axis, /*forward=*/false,
                    options_.use_correction);
    }
  }
  return Status::OK();
}

}  // namespace mgardp
