#include "decompose/decomposer.h"

#include <cstddef>

#include "util/parallel.h"

namespace mgardp {
namespace internal {

namespace {

// Mass matrix of linear hats on a uniform coarse grid with spacing H = 2:
//   interior rows: [H/6, 4H/6, H/6], boundary rows: [2H/6, H/6].
constexpr double kH = 2.0;
constexpr double kOff = kH / 6.0;
constexpr double kDiagInt = 4.0 * kH / 6.0;
constexpr double kDiagBnd = 2.0 * kH / 6.0;

// Thomas-algorithm factors for the coarse mass matrix of size mc. They
// depend only on mc, so one computation serves every line of an axis pass;
// the divisions in the data sweep still divide by the stored denominators,
// keeping results bit-identical to factoring inline.
struct ThomasFactors {
  std::vector<double> c;      // modified upper-diagonal factors
  std::vector<double> denom;  // forward-elimination denominators
};

void ComputeThomasFactors(std::size_t mc, ThomasFactors* f) {
  MGARDP_DCHECK(mc >= 2);
  f->c.resize(mc);
  f->denom.resize(mc);
  f->denom[0] = kDiagBnd;
  f->c[0] = kOff / kDiagBnd;
  for (std::size_t i = 1; i < mc; ++i) {
    const double diag = (i + 1 == mc) ? kDiagBnd : kDiagInt;
    const double denom = diag - kOff * f->c[i - 1];
    f->c[i] = kOff / denom;
    f->denom[i] = denom;
  }
}

void SolveCoarseMassWith(double* b, std::size_t mc, const ThomasFactors& f) {
  b[0] /= f.denom[0];
  for (std::size_t i = 1; i < mc; ++i) {
    b[i] = (b[i] - kOff * b[i - 1]) / f.denom[i];
  }
  for (std::size_t i = mc - 1; i-- > 0;) {
    b[i] -= f.c[i] * b[i + 1];
  }
}

// Computes the coarse-grid load vector of the detail function: each detail
// hat at odd position 2I +- 1 overlaps coarse hat I with integral h/2
// (h = 1, the fine spacing). `us` is the element stride of the line.
void DetailLoadVector(const double* u, std::size_t us, std::size_t m,
                      double* b) {
  const std::size_t mc = (m + 1) / 2;
  for (std::size_t i = 0; i < mc; ++i) {
    double load = 0.0;
    if (i > 0) {
      load += u[(2 * i - 1) * us];
    }
    if (2 * i + 1 < m) {
      load += u[(2 * i + 1) * us];
    }
    b[i] = 0.5 * load;
  }
}

// Strided line kernels: identical arithmetic to the public ForwardLine /
// InverseLine, operating in place on a line whose elements are `us` apart.
// `b` is caller-provided scratch of at least (m + 1) / 2 doubles; `factors`
// is null when the correction is disabled.
void ForwardLineStrided(double* u, std::size_t us, std::size_t m,
                        const ThomasFactors* factors, double* b) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  // Predict: odd entries become interpolation residuals.
  for (std::size_t p = 1; p < m; p += 2) {
    u[p * us] -= 0.5 * (u[(p - 1) * us] + u[(p + 1) * us]);
  }
  if (factors == nullptr) {
    return;
  }
  // Update: L2 projection correction on the even (coarse) entries.
  const std::size_t mc = (m + 1) / 2;
  DetailLoadVector(u, us, m, b);
  SolveCoarseMassWith(b, mc, *factors);
  for (std::size_t i = 0; i < mc; ++i) {
    u[2 * i * us] += b[i];
  }
}

void InverseLineStrided(double* u, std::size_t us, std::size_t m,
                        const ThomasFactors* factors, double* b) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  if (factors != nullptr) {
    const std::size_t mc = (m + 1) / 2;
    DetailLoadVector(u, us, m, b);
    SolveCoarseMassWith(b, mc, *factors);
    for (std::size_t i = 0; i < mc; ++i) {
      u[2 * i * us] -= b[i];
    }
  }
  for (std::size_t p = 1; p < m; p += 2) {
    u[p * us] += 0.5 * (u[(p - 1) * us] + u[(p + 1) * us]);
  }
}

}  // namespace

void SolveCoarseMass(double* b, std::size_t mc, std::vector<double>* scratch) {
  MGARDP_DCHECK(mc >= 2);
  ThomasFactors factors;
  ComputeThomasFactors(mc, &factors);
  // Preserve the historical contract that scratch holds the modified
  // upper-diagonal factors.
  *scratch = factors.c;
  SolveCoarseMassWith(b, mc, factors);
}

void ForwardLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  const std::size_t mc = (m + 1) / 2;
  scratch->resize(2 * mc);
  ThomasFactors factors;
  if (correct) {
    ComputeThomasFactors(mc, &factors);
  }
  ForwardLineStrided(u, 1, m, correct ? &factors : nullptr, scratch->data());
}

void InverseLine(double* u, std::size_t m, bool correct,
                 std::vector<double>* scratch) {
  MGARDP_DCHECK(m >= 3 && m % 2 == 1);
  const std::size_t mc = (m + 1) / 2;
  scratch->resize(2 * mc);
  ThomasFactors factors;
  if (correct) {
    ComputeThomasFactors(mc, &factors);
  }
  InverseLineStrided(u, 1, m, correct ? &factors : nullptr, scratch->data());
}

}  // namespace internal

namespace {

// Applies the forward or inverse line transform along `axis` (0 = x, 1 = y,
// 2 = z) over every line of the active lattice at `stride`. Lines are
// transformed in place through strided pointers -- no gather/scatter copy --
// and the Thomas factors are computed once per pass since every line of the
// pass has the same length.
void TransformAxis(Array3Dd* data, std::size_t stride, int axis, bool forward,
                   bool correct) {
  const Dims3& dims = data->dims();
  const std::size_t ext[3] = {dims.nx, dims.ny, dims.nz};
  // Active lattice extents.
  auto lat = [&](int a) -> std::size_t {
    return ext[a] == 1 ? 1 : (ext[a] - 1) / stride + 1;
  };
  const std::size_t m = lat(axis);
  if (m < 3) {
    return;  // axis inactive or already at its coarsest
  }
  const int o1 = (axis == 0) ? 1 : 0;
  const int o2 = (axis == 2) ? 1 : 2;
  const std::size_t n1 = lat(o1);
  const std::size_t n2 = lat(o2);

  const std::size_t mc = (m + 1) / 2;
  internal::ThomasFactors factors;
  if (correct) {
    internal::ComputeThomasFactors(mc, &factors);
  }
  const internal::ThomasFactors* f = correct ? &factors : nullptr;

  // Element strides of each axis in the row-major (z fastest) layout.
  const std::size_t elem_stride[3] = {dims.ny * dims.nz, dims.nz, 1};
  const std::size_t us = stride * elem_stride[axis];
  const std::size_t s1 = ext[o1] == 1 ? 0 : stride * elem_stride[o1];
  const std::size_t s2 = ext[o2] == 1 ? 0 : stride * elem_stride[o2];
  double* const base = data->data();

  // Lines along `axis` touch disjoint lattice sites for distinct (a, b), so
  // they solve independently across the pool; each chunk keeps its own
  // correction scratch buffer.
  const std::size_t lines_per_chunk = std::max<std::size_t>(1, 2048 / m);
  ParallelFor(0, n1 * n2, lines_per_chunk,
              [&](std::size_t lo, std::size_t hi) {
    std::vector<double> b(mc);
    for (std::size_t t = lo; t < hi; ++t) {
      double* const u = base + (t / n2) * s1 + (t % n2) * s2;
      if (forward) {
        internal::ForwardLineStrided(u, us, m, f, b.data());
      } else {
        internal::InverseLineStrided(u, us, m, f, b.data());
      }
    }
  });
}

}  // namespace

Status Decomposer::Decompose(Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims " + data->dims().ToString() +
                           " do not match hierarchy dims " +
                           hierarchy_.dims().ToString());
  }
  for (int step = 0; step < hierarchy_.num_steps(); ++step) {
    const std::size_t stride = hierarchy_.StrideForStep(step);
    for (int axis = 0; axis < 3; ++axis) {
      TransformAxis(data, stride, axis, /*forward=*/true,
                    options_.use_correction);
    }
  }
  return Status::OK();
}

Status Decomposer::Recompose(Array3Dd* data) const {
  if (!(data->dims() == hierarchy_.dims())) {
    return Status::Invalid("data dims " + data->dims().ToString() +
                           " do not match hierarchy dims " +
                           hierarchy_.dims().ToString());
  }
  for (int step = hierarchy_.num_steps() - 1; step >= 0; --step) {
    const std::size_t stride = hierarchy_.StrideForStep(step);
    for (int axis = 2; axis >= 0; --axis) {
      TransformAxis(data, stride, axis, /*forward=*/false,
                    options_.use_correction);
    }
  }
  return Status::OK();
}

}  // namespace mgardp
