// Minimal logging and assertion macros.
//
// MGARDP_CHECK* are always-on invariant checks (used for programming errors,
// not for user-input validation -- that path returns Status). MGARDP_DCHECK*
// compile out in release builds.

#ifndef MGARDP_UTIL_LOGGING_H_
#define MGARDP_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace mgardp {
namespace internal {

// Accumulates a message and aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << file << ":" << line << " CHECK failed: ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Turns a streamed expression into void so it can sit in a ternary branch;
// operator& binds more loosely than operator<<, so the whole chain streams
// first (the standard glog trick).
class Voidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace mgardp

#define MGARDP_CHECK(cond)                                         \
  (cond) ? (void)0                                                 \
         : ::mgardp::internal::Voidify() &                         \
               ::mgardp::internal::FatalLogMessage(__FILE__,       \
                                                   __LINE__)       \
                   .stream()                                       \
               << #cond << " "

#define MGARDP_CHECK_BINOP(a, b, op)                               \
  ((a)op(b)) ? (void)0                                             \
             : ::mgardp::internal::Voidify() &                     \
                   ::mgardp::internal::FatalLogMessage(__FILE__,   \
                                                       __LINE__)   \
                       .stream()                                   \
                   << #a " " #op " " #b " (" << (a) << " vs "      \
                   << (b) << ") "

#define MGARDP_CHECK_EQ(a, b) MGARDP_CHECK_BINOP(a, b, ==)
#define MGARDP_CHECK_NE(a, b) MGARDP_CHECK_BINOP(a, b, !=)
#define MGARDP_CHECK_LT(a, b) MGARDP_CHECK_BINOP(a, b, <)
#define MGARDP_CHECK_LE(a, b) MGARDP_CHECK_BINOP(a, b, <=)
#define MGARDP_CHECK_GT(a, b) MGARDP_CHECK_BINOP(a, b, >)
#define MGARDP_CHECK_GE(a, b) MGARDP_CHECK_BINOP(a, b, >=)

#ifdef NDEBUG
#define MGARDP_DCHECK(cond) \
  while (false) MGARDP_CHECK(cond)
#define MGARDP_DCHECK_EQ(a, b) \
  while (false) MGARDP_CHECK_EQ(a, b)
#define MGARDP_DCHECK_LT(a, b) \
  while (false) MGARDP_CHECK_LT(a, b)
#define MGARDP_DCHECK_LE(a, b) \
  while (false) MGARDP_CHECK_LE(a, b)
#else
#define MGARDP_DCHECK(cond) MGARDP_CHECK(cond)
#define MGARDP_DCHECK_EQ(a, b) MGARDP_CHECK_EQ(a, b)
#define MGARDP_DCHECK_LT(a, b) MGARDP_CHECK_LT(a, b)
#define MGARDP_DCHECK_LE(a, b) MGARDP_CHECK_LE(a, b)
#endif

#endif  // MGARDP_UTIL_LOGGING_H_
