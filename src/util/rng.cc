#include "util/rng.h"

#include <cmath>

namespace mgardp {

double Rng::NextGaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box-Muller transform. u1 in (0, 1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

}  // namespace mgardp
