// A dense row-major 3D array of scalars.
//
// The library treats every dataset as a 3D grid; 1D and 2D data use extent 1
// in the unused dimensions. Indexing is (i, j, k) = (x, y, z) with z fastest,
// matching how simulation dumps are laid out on disk.

#ifndef MGARDP_UTIL_ARRAY3D_H_
#define MGARDP_UTIL_ARRAY3D_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/logging.h"

namespace mgardp {

// Grid extents along x, y, z.
struct Dims3 {
  std::size_t nx = 1;
  std::size_t ny = 1;
  std::size_t nz = 1;

  std::size_t size() const { return nx * ny * nz; }
  // Number of axes with extent > 1 (the effective dimensionality).
  int dimensionality() const {
    return static_cast<int>(nx > 1) + static_cast<int>(ny > 1) +
           static_cast<int>(nz > 1);
  }
  bool operator==(const Dims3& o) const {
    return nx == o.nx && ny == o.ny && nz == o.nz;
  }
  std::string ToString() const;
};

template <typename T>
class Array3D {
 public:
  Array3D() : dims_{0, 0, 0} {}
  explicit Array3D(Dims3 dims, T fill = T{})
      : dims_(dims), data_(dims.size(), fill) {}
  Array3D(Dims3 dims, std::vector<T> data)
      : dims_(dims), data_(std::move(data)) {
    MGARDP_CHECK_EQ(dims_.size(), data_.size());
  }

  const Dims3& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }

  T& operator()(std::size_t i, std::size_t j, std::size_t k) {
    MGARDP_DCHECK(i < dims_.nx && j < dims_.ny && k < dims_.nz);
    return data_[(i * dims_.ny + j) * dims_.nz + k];
  }
  const T& operator()(std::size_t i, std::size_t j, std::size_t k) const {
    MGARDP_DCHECK(i < dims_.nx && j < dims_.ny && k < dims_.nz);
    return data_[(i * dims_.ny + j) * dims_.nz + k];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& vector() { return data_; }
  const std::vector<T>& vector() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

 private:
  Dims3 dims_;
  std::vector<T> data_;
};

using Array3Dd = Array3D<double>;

}  // namespace mgardp

#endif  // MGARDP_UTIL_ARRAY3D_H_
