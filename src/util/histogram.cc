#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace mgardp {

Histogram::Histogram() : Histogram(Options()) {}

Histogram::Histogram(Options options) : options_(options) {
  MGARDP_CHECK(options_.min_value > 0.0);
  MGARDP_CHECK(options_.growth > 1.0);
  MGARDP_CHECK(options_.num_buckets >= 1);
  edges_.resize(options_.num_buckets + 1);
  double edge = options_.min_value;
  for (int b = 0; b <= options_.num_buckets; ++b) {
    edges_[b] = edge;
    edge *= options_.growth;
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      options_.num_buckets + 1);
  Reset();
}

int Histogram::BucketFor(double value) const {
  // Record() has already rejected NaN and clamped negatives, so the only
  // values reaching the `!(value > edge)` test are well-ordered.
  if (!(value > edges_[0])) {
    return 0;
  }
  const int b = static_cast<int>(
      std::floor(std::log(value / options_.min_value) /
                 std::log(options_.growth)));
  return std::clamp(b, 0, options_.num_buckets);
}

namespace {

// fetch_add on atomic<double> is C++20 but not universally lowered well;
// a CAS loop is portable and contention here is negligible.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Record(double value) {
  // NaN would poison sum_ and wedge the extrema CAS loops (every NaN
  // comparison is false); count it as dropped instead of recording.
  if (std::isnan(value)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Negative samples (backward clock steps) would otherwise alias into
  // bucket 0 silently while dragging min() below zero; clamp them.
  if (value < 0.0) {
    value = 0.0;
  }
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Reset() seeds min_=+inf / max_=-inf, so the first sample needs no
  // special case: a count-gated seeding store would race a concurrent
  // second sample's CAS against the stale seed and lose it.
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
  AtomicAdd(&sum_, value);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::bucket_upper_edge(int b) const {
  MGARDP_CHECK(b >= 0 && b <= options_.num_buckets);
  return b == options_.num_buckets ? std::numeric_limits<double>::infinity()
                                   : edges_[b + 1];
}

std::uint64_t Histogram::bucket_count(int b) const {
  MGARDP_CHECK(b >= 0 && b <= options_.num_buckets);
  return buckets_[b].load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // The extrema are tracked exactly (CAS min/max on every Record), so the
  // distribution's endpoints need no in-bucket interpolation — p0/p100
  // from bucket edges would be off by up to one bucket's width.
  if (q == 0.0) {
    return min();
  }
  if (q == 1.0) {
    return max();
  }
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (int b = 0; b <= options_.num_buckets; ++b) {
    const std::uint64_t in_bucket =
        buckets_[b].load(std::memory_order_relaxed);
    if (cum + in_bucket >= rank) {
      const double lo = b == 0 ? std::min(min(), edges_[0]) : edges_[b];
      const double hi =
          b == options_.num_buckets ? std::max(max(), edges_[b]) : edges_[b + 1];
      const double frac = in_bucket == 0
                              ? 0.0
                              : static_cast<double>(rank - cum) /
                                    static_cast<double>(in_bucket);
      return std::clamp(lo + frac * (hi - lo), min(), max());
    }
    cum += in_bucket;
  }
  return max();
}

void Histogram::Reset() {
  for (int b = 0; b <= options_.num_buckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  // Identity elements, so Record() never needs a first-sample branch (the
  // accessors report 0 while count() == 0).
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

}  // namespace mgardp
