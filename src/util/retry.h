// Retry with exponential backoff for transient storage faults.
//
// A deep storage hierarchy (network PFS, tape silo, burst buffer) fails
// transiently all the time; the retrieval path wraps each segment read in a
// RetryPolicy instead of treating the first IOError as fatal. Backoff delay
// and jitter are fully deterministic given the policy's seed, and the sleep
// itself is injectable so tests run at full speed while recording the
// schedule the production path would have used.

#ifndef MGARDP_UTIL_RETRY_H_
#define MGARDP_UTIL_RETRY_H_

#include <functional>
#include <utility>

#include "util/status.h"

namespace mgardp {

// Which failures are worth retrying: I/O errors are assumed transient
// (loose cable, busy tier, throttled PFS); everything else — not-found,
// checksum mismatch, parse errors — is permanent and retrying cannot help.
bool IsRetryable(const Status& status);

class RetryPolicy {
 public:
  struct Options {
    int max_attempts = 3;          // total tries, including the first
    double base_delay_ms = 1.0;    // delay after the first failure
    double multiplier = 2.0;       // exponential growth per attempt
    double max_delay_ms = 1000.0;  // backoff ceiling
    double jitter = 0.5;           // fraction of the delay randomized away
    std::uint64_t jitter_seed = 0; // deterministic jitter stream
  };

  RetryPolicy() : RetryPolicy(Options()) {}
  explicit RetryPolicy(Options options);

  const Options& options() const { return options_; }

  // Backoff delay before retry number `retry` (0 = delay after the first
  // failure). Deterministic: full-jitter over [delay*(1-jitter), delay],
  // with the jitter stream derived from (jitter_seed, retry, salt) so a
  // given retry of a given operation always waits the same time.
  double DelayMs(int retry, std::uint64_t salt = 0) const;

  // Replaces the sleep implementation (milliseconds). Tests install a
  // recorder; the default performs a real std::this_thread sleep.
  void set_sleep(std::function<void(double)> sleep) {
    sleep_ = std::move(sleep);
  }

  // Runs `op` until it succeeds, fails permanently, or attempts run out.
  // `op` is any callable returning Status or Result<T>; the last outcome is
  // returned either way. `salt` diversifies the jitter stream between
  // concurrent operations sharing one policy. `retries_out`, if non-null,
  // is incremented once per retry actually performed.
  template <typename Op>
  auto Run(Op&& op, std::uint64_t salt = 0, int* retries_out = nullptr) const
      -> decltype(op()) {
    for (int attempt = 0;; ++attempt) {
      auto outcome = op();
      if (outcome.ok() || !IsRetryable(GetStatus(outcome)) ||
          attempt + 1 >= options_.max_attempts) {
        return outcome;
      }
      sleep_(DelayMs(attempt, salt));
      if (retries_out != nullptr) {
        ++*retries_out;
      }
    }
  }

 private:
  Options options_;
  std::function<void(double)> sleep_;
};

}  // namespace mgardp

#endif  // MGARDP_UTIL_RETRY_H_
