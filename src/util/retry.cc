#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/rng.h"

namespace mgardp {

bool IsRetryable(const Status& status) {
  return status.code() == StatusCode::kIOError;
}

RetryPolicy::RetryPolicy(Options options) : options_(options) {
  sleep_ = [](double ms) {
    if (ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    }
  };
}

double RetryPolicy::DelayMs(int retry, std::uint64_t salt) const {
  double delay = options_.base_delay_ms;
  for (int i = 0; i < retry; ++i) {
    delay = std::min(delay * options_.multiplier, options_.max_delay_ms);
  }
  delay = std::min(delay, options_.max_delay_ms);
  const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
  if (jitter <= 0.0) {
    return delay;
  }
  // One Rng per (seed, retry, salt) triple keeps the schedule independent
  // of how many other operations drew from the policy in between.
  Rng rng(options_.jitter_seed ^
          (0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(retry + 1)) ^
          (0xC2B2AE3D27D4EB4FULL * (salt + 1)));
  return delay * (1.0 - jitter * rng.NextDouble());
}

}  // namespace mgardp
