// Binary serialization helpers.
//
// A tiny append-only writer / sequential reader pair over std::string
// buffers plus file load/store. All multi-byte values are little-endian
// native (the library targets a single host; files are not meant to be
// portable across endianness).

#ifndef MGARDP_UTIL_IO_H_
#define MGARDP_UTIL_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace mgardp {

// Serializes POD values and vectors into a growing byte buffer.
class BinaryWriter {
 public:
  template <typename T>
  void Put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t off = buffer_.size();
    buffer_.resize(off + sizeof(T));
    std::memcpy(buffer_.data() + off, &value, sizeof(T));
  }

  template <typename T>
  void PutVector(const std::vector<T>& values) {
    static_assert(std::is_trivially_copyable_v<T>);
    Put<std::uint64_t>(values.size());
    const std::size_t off = buffer_.size();
    buffer_.resize(off + values.size() * sizeof(T));
    if (!values.empty()) {
      std::memcpy(buffer_.data() + off, values.data(),
                  values.size() * sizeof(T));
    }
  }

  void PutString(const std::string& s) {
    Put<std::uint64_t>(s.size());
    buffer_.append(s);
  }

  void PutBytes(const void* data, std::size_t n) {
    const std::size_t off = buffer_.size();
    buffer_.resize(off + n);
    if (n > 0) {
      std::memcpy(buffer_.data() + off, data, n);
    }
  }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Sequentially deserializes values written by BinaryWriter. All getters
// return Status so truncated/corrupt inputs surface as errors, not UB.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}
  BinaryReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) {
      return Status::OutOfRange("BinaryReader: truncated input");
    }
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  Status GetVector(std::vector<T>* out) {
    std::uint64_t n = 0;
    MGARDP_RETURN_NOT_OK(Get(&n));
    if (pos_ + n * sizeof(T) > size_) {
      return Status::OutOfRange("BinaryReader: truncated vector");
    }
    out->resize(n);
    if (n > 0) {
      std::memcpy(out->data(), data_ + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  Status GetString(std::string* out) {
    std::uint64_t n = 0;
    MGARDP_RETURN_NOT_OK(Get(&n));
    if (pos_ + n > size_) {
      return Status::OutOfRange("BinaryReader: truncated string");
    }
    out->assign(data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status GetBytes(void* out, std::size_t n) {
    if (pos_ + n > size_) {
      return Status::OutOfRange("BinaryReader: truncated bytes");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Writes `contents` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& contents);

// Writes `contents` to `path` atomically (temp file + rename), so a
// concurrent reader never observes a half-written file. Used by the
// Prometheus and Chrome-trace periodic flushers.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

// Reads the entire file at `path`.
Result<std::string> ReadFileToString(const std::string& path);

// Reads exactly `size` bytes starting at `offset`. NotFound if the file
// does not exist, OutOfRange if the range extends past its end.
Result<std::string> ReadFileRange(const std::string& path,
                                  std::uint64_t offset, std::uint64_t size);

}  // namespace mgardp

#endif  // MGARDP_UTIL_IO_H_
