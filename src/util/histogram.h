// Lock-free log-bucketed histogram for service telemetry.
//
// Latency and size distributions in a serving path are heavy-tailed, so the
// service layer records them into geometrically spaced buckets: constant
// relative error per bucket, fixed memory, and a wait-free Record() (one
// relaxed atomic increment) callable from every worker thread at once.
// Quantile() reads the bucket counts without stopping writers; the answer
// is exact to within one bucket's width, which is all monitoring needs.

#ifndef MGARDP_UTIL_HISTOGRAM_H_
#define MGARDP_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mgardp {

class Histogram {
 public:
  struct Options {
    double min_value = 1e-3;  // lower edge of bucket 0
    double growth = 1.25;     // geometric bucket-width factor (> 1)
    int num_buckets = 96;     // covers [min_value, min_value * growth^n)
  };

  Histogram();  // default options
  explicit Histogram(Options options);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Records one sample. Thread-safe and wait-free; values below the first
  // bucket edge land in bucket 0, values beyond the last in the overflow
  // bucket. NaN samples are dropped (see dropped()); negative samples —
  // clock anomalies in latency feeds — are clamped to 0 rather than
  // silently aliasing into bucket 0 with a negative min.
  void Record(double value);

  std::uint64_t count() const;
  // NaN samples rejected by Record() since the last Reset().
  std::uint64_t dropped() const;
  double sum() const;
  // Smallest / largest value ever recorded (0 when empty).
  double min() const;
  double max() const;

  // Approximate q-quantile (0 <= q <= 1): locates the bucket holding the
  // ceil(q * count)-th sample and interpolates linearly inside it, clamped
  // to the recorded min/max. q <= 0 and q >= 1 return the tracked min/max
  // extrema exactly (not a bucket-edge interpolation), so p0/p100 are
  // sample-precise. Returns 0 when empty.
  double Quantile(double q) const;

  // Bucket introspection for exporters (Prometheus text exposition).
  // Valid b is [0, num_buckets()]; index num_buckets() is the overflow
  // bucket, whose upper edge is +infinity.
  int num_buckets() const { return options_.num_buckets; }
  double bucket_upper_edge(int b) const;
  std::uint64_t bucket_count(int b) const;

  void Reset();

 private:
  int BucketFor(double value) const;

  Options options_;
  std::vector<double> edges_;  // bucket lower edges, edges_[num_buckets] = top
  // buckets_[num_buckets] is the overflow bucket.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<double> sum_{0.0};
  // Seeded to +/-inf by Reset() so every Record() path is a plain
  // CAS-min/max — a count-gated first-sample store would race.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

}  // namespace mgardp

#endif  // MGARDP_UTIL_HISTOGRAM_H_
