#include "util/status.h"

namespace mgardp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "Data loss";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

void Status::Abort(const char* context) const {
  if (ok()) {
    return;
  }
  if (context != nullptr) {
    std::cerr << context << ": ";
  }
  std::cerr << ToString() << std::endl;
  std::abort();
}

}  // namespace mgardp
