#include "util/io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mgardp {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  MGARDP_RETURN_NOT_OK(WriteFile(tmp, contents));
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("cannot rename " + tmp + " into " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failure: " + path);
  }
  return ss.str();
}

Result<std::string> ReadFileRange(const std::string& path,
                                  std::uint64_t offset, std::uint64_t size) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    return Status::NotFound("no such file: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  in.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(in.tellg());
  if (size > file_size || offset > file_size - size) {
    return Status::OutOfRange("range [" + std::to_string(offset) + ", +" +
                              std::to_string(size) + ") past end of " + path);
  }
  in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  std::string out(size, '\0');
  in.read(out.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    return Status::IOError("short read: " + path);
  }
  return out;
}

}  // namespace mgardp
