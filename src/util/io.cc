#include "util/io.h"

#include <fstream>
#include <sstream>

namespace mgardp {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failure: " + path);
  }
  return ss.str();
}

}  // namespace mgardp
