#include "util/array3d.h"

#include <sstream>

namespace mgardp {

std::string Dims3::ToString() const {
  std::ostringstream os;
  os << nx << "x" << ny << "x" << nz;
  return os.str();
}

}  // namespace mgardp
