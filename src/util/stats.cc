#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.h"

namespace mgardp {

FieldSummary Summarize(const double* values, std::size_t n) {
  FieldSummary s;
  s.count = n;
  if (n == 0) {
    return s;
  }
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
    abs_sum += std::fabs(v);
    sq_sum += v * v;
    s.abs_max = std::max(s.abs_max, std::fabs(v));
  }
  s.mean = sum / static_cast<double>(n);
  s.abs_mean = abs_sum / static_cast<double>(n);
  s.l2_norm = std::sqrt(sq_sum);

  // Central moments in a second pass for numerical robustness.
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = values[i] - s.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  s.stddev = std::sqrt(m2);
  if (m2 > 0.0) {
    s.skewness = m3 / std::pow(m2, 1.5);
    s.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  return s;
}

FieldSummary Summarize(const std::vector<double>& values) {
  return Summarize(values.data(), values.size());
}

std::string FieldSummary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " max=" << max << " mean=" << mean
     << " std=" << stddev;
  return os.str();
}

double MaxAbsError(const std::vector<double>& a,
                   const std::vector<double>& b) {
  MGARDP_CHECK_EQ(a.size(), b.size());
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, std::fabs(a[i] - b[i]));
  }
  return err;
}

double RmsError(const std::vector<double>& a, const std::vector<double>& b) {
  MGARDP_CHECK_EQ(a.size(), b.size());
  if (a.empty()) {
    return 0.0;
  }
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(a.size()));
}

double Psnr(const std::vector<double>& original,
            const std::vector<double>& reconstructed) {
  const double rmse = RmsError(original, reconstructed);
  const FieldSummary s = Summarize(original);
  if (rmse == 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  if (s.range() == 0.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return 20.0 * std::log10(s.range() / rmse);
}

double Quantile(std::vector<double> values, double q) {
  MGARDP_CHECK(!values.empty());
  MGARDP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

namespace {

// Places the order statistics at `ranks` (ascending, within [first, last))
// into their sorted positions via divide-and-conquer nth_element: the k-th
// smallest element of a multiset is a well-defined value, so the ranks end
// up holding exactly what a full sort would put there, in O(n log ranks)
// instead of O(n log n).
void SelectRanks(std::vector<double>* v, std::size_t first, std::size_t last,
                 const std::size_t* ranks, std::size_t num_ranks) {
  if (num_ranks == 0 || first >= last) {
    return;
  }
  const std::size_t mid = num_ranks / 2;
  const std::size_t r = ranks[mid];
  std::nth_element(v->begin() + static_cast<std::ptrdiff_t>(first),
                   v->begin() + static_cast<std::ptrdiff_t>(r),
                   v->begin() + static_cast<std::ptrdiff_t>(last));
  SelectRanks(v, first, r, ranks, mid);
  SelectRanks(v, r + 1, last, ranks + mid + 1, num_ranks - mid - 1);
}

}  // namespace

std::vector<double> AbsQuantileSketch(const std::vector<double>& values,
                                      std::size_t bins) {
  MGARDP_CHECK_GT(bins, 0u);
  std::vector<double> abs_vals(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    abs_vals[i] = std::fabs(values[i]);
  }
  std::vector<double> sketch(bins, 0.0);
  if (abs_vals.empty()) {
    return sketch;
  }
  // Each bin reads positions lo and lo + 1 of the sorted array; selecting
  // just those ranks yields the same values as sorting everything.
  std::vector<std::size_t> ranks;
  ranks.reserve(2 * bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double q = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
    const double pos = q * static_cast<double>(abs_vals.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    ranks.push_back(lo);
    ranks.push_back(std::min(lo + 1, abs_vals.size() - 1));
  }
  std::sort(ranks.begin(), ranks.end());
  ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
  SelectRanks(&abs_vals, 0, abs_vals.size(), ranks.data(), ranks.size());
  for (std::size_t b = 0; b < bins; ++b) {
    const double q = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
    const double pos = q * static_cast<double>(abs_vals.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, abs_vals.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    sketch[b] = abs_vals[lo] * (1.0 - frac) + abs_vals[hi] * frac;
  }
  return sketch;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  MGARDP_CHECK_EQ(a.size(), b.size());
  if (a.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va == 0.0 || vb == 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(va * vb);
}

}  // namespace mgardp
