// Shared thread-pool parallelism layer.
//
// Every hot path in mgardp (decomposition line solves, bit-plane slicing,
// lossless chunk coding, DNN matmuls, per-level refactor/retrieve fan-out)
// parallelizes through the single lazily-created global pool defined here,
// so the process never oversubscribes the machine no matter how many
// subsystems are active at once.
//
// Determinism contract: every helper in this header produces bit-identical
// results for any thread count, including 1.
//   * ParallelFor splits [begin, end) into disjoint chunks; as long as the
//     body writes only to locations indexed by its own range (true for all
//     call sites), the output cannot depend on scheduling.
//   * ParallelReduce chunks by `grain` alone -- never by thread count --
//     and folds the per-chunk results in ascending chunk order, so
//     floating-point sums are reproducible across MGARDP_THREADS settings.
//
// Thread count: MGARDP_THREADS environment variable if set to a positive
// integer, else std::thread::hardware_concurrency(). Nested parallel calls
// (a ParallelFor issued from inside a pool worker) run inline on the
// calling worker; the pool never deadlocks on recursion.

#ifndef MGARDP_UTIL_PARALLEL_H_
#define MGARDP_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mgardp {

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers; the caller of Run() acts as the last
  // participant, so `num_threads == 1` means a fully inline, lock-free pool.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(c) for every chunk index c in [0, num_chunks), statically
  // striped across the participants (worker w takes c = w, w + P, ...).
  // Blocks until all chunks finish. The first exception thrown by any
  // chunk is rethrown here after the batch drains; remaining chunks still
  // run. Reentrant calls (from inside a chunk) execute inline.
  void Run(std::size_t num_chunks, const std::function<void(std::size_t)>& fn);

  // True while the current thread is executing inside a Run() chunk.
  static bool InParallelRegion();

  // Cross-thread ambient-context propagation. Run() calls capture() on the
  // submitting thread and workers bracket each stripe with
  // exchange(captured) / exchange(previous), so thread-local request
  // context (obs/request_trace.h) follows the work onto pool threads. The
  // captured pointer stays valid because Run() blocks until every stripe
  // finishes — the submitting scope cannot unwind underneath a worker.
  // Registration is process-wide, idempotent, and must happen before the
  // contexts being propagated exist; plain function pointers keep the
  // no-propagator path at two raw loads per Run.
  struct ContextPropagator {
    void* (*capture)() = nullptr;         // on the submitting thread
    void* (*exchange)(void*) = nullptr;   // on a worker; returns previous
  };
  static void SetContextPropagator(const ContextPropagator& propagator);

 private:
  void WorkerLoop(int worker_id);
  void RunStripe(int stripe, std::size_t num_chunks,
                 const std::function<void(std::size_t)>& fn, void* context);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  std::size_t num_chunks_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  void* job_context_ = nullptr;  // captured ambient context for this job
  int workers_done_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  // Serializes concurrent Run() calls from distinct non-pool threads.
  std::mutex run_mu_;
};

// The process-wide pool, created on first use. Size comes from the
// MGARDP_THREADS environment variable (read once), falling back to
// hardware_concurrency().
ThreadPool& GlobalThreadPool();

// Replaces the global pool with one of `num_threads` threads. Intended for
// tests and benchmarks that sweep thread counts inside one process; not
// safe to call while parallel work is in flight.
void SetGlobalThreadCount(int num_threads);

// Thread count the global pool currently uses (without forcing creation of
// worker threads beyond the pool itself).
int GlobalThreadCount();

// Runs body(chunk_begin, chunk_end) over a partition of [begin, end).
// `grain` is the minimum iterations per chunk; the range is split into at
// most num_threads balanced chunks of >= grain iterations each. Safe for
// any body that writes only through its own index range.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

// Deterministic ordered reduction. The range is cut into fixed chunks of
// exactly `grain` iterations (the last may be short) regardless of thread
// count; `map(chunk_begin, chunk_end)` produces each chunk's value and
// `combine(acc, value)` folds them in ascending chunk order starting from
// `init`. Bit-identical for 1 vs N threads by construction.
template <typename T, typename Map, typename Combine>
T ParallelReduce(std::size_t begin, std::size_t end, std::size_t grain,
                 T init, Map&& map, Combine&& combine) {
  if (begin >= end) {
    return init;
  }
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  const std::size_t num_chunks = (n + g - 1) / g;
  std::vector<T> partial(num_chunks, init);
  GlobalThreadPool().Run(num_chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = std::min(lo + g, end);
    partial[c] = map(lo, hi);
  });
  T acc = std::move(init);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace mgardp

#endif  // MGARDP_UTIL_PARALLEL_H_
