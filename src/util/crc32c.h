// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// Portable table-driven software implementation — no SSE4.2 dependency —
// used to checksum stored bit-plane segments so media corruption is
// detected at read time instead of surfacing as silent decode garbage.
// The variant matches the widely deployed RFC 3720 / iSCSI definition
// (init 0xFFFFFFFF, reflected, final XOR), so values can be cross-checked
// against other tooling.

#ifndef MGARDP_UTIL_CRC32C_H_
#define MGARDP_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace mgardp {

// Extends a running CRC-32C with `n` more bytes. `crc` is the value
// returned by a previous Crc32c/ExtendCrc32c call (not the raw internal
// state); chaining Extend over split buffers equals one call over the
// concatenation.
std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t n);

// CRC-32C of one buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t n) {
  return ExtendCrc32c(0, data, n);
}

inline std::uint32_t Crc32c(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

}  // namespace mgardp

#endif  // MGARDP_UTIL_CRC32C_H_
