#include "util/crc32c.h"

#include <array>

namespace mgardp {

namespace {

// Slice-by-4: four 256-entry tables generated at first use. Table 0 is the
// classic byte-at-a-time table for the reflected polynomial; table k maps a
// byte processed k positions earlier.
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 4; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                           std::size_t n) {
  const auto& t = Tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  while (n >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^
        t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mgardp
