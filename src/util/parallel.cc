#include "util/parallel.h"

#include <cstdlib>
#include <memory>

#include "util/logging.h"

namespace mgardp {

namespace {

thread_local bool tls_in_parallel_region = false;

// Function pointers (not std::function) so the unregistered path costs
// two raw loads. Written once during static initialization of the obs
// layer, read on every Run; relaxed is fine because registration happens
// before any propagated context can exist.
std::atomic<void* (*)()> g_ctx_capture{nullptr};
std::atomic<void* (*)(void*)> g_ctx_exchange{nullptr};

// Installs `context` on the current thread for the guard's lifetime via
// the registered exchange hook; no-op when no propagator is registered.
class AmbientContextGuard {
 public:
  explicit AmbientContextGuard(void* context)
      : exchange_(g_ctx_exchange.load(std::memory_order_relaxed)) {
    if (exchange_ != nullptr) {
      prev_ = exchange_(context);
    }
  }
  ~AmbientContextGuard() {
    if (exchange_ != nullptr) {
      exchange_(prev_);
    }
  }

 private:
  void* (*exchange_)(void*);
  void* prev_ = nullptr;
};

// Marks the current thread as inside a chunk for the guard's lifetime.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard() : prev_(tls_in_parallel_region) {
    tls_in_parallel_region = true;
  }
  ~ParallelRegionGuard() { tls_in_parallel_region = prev_; }

 private:
  bool prev_;
};

int DefaultThreadCount() {
  if (const char* env = std::getenv("MGARDP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  MGARDP_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads - 1);
  for (int w = 0; w + 1 < num_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::SetContextPropagator(const ContextPropagator& propagator) {
  g_ctx_capture.store(propagator.capture, std::memory_order_relaxed);
  g_ctx_exchange.store(propagator.exchange, std::memory_order_relaxed);
}

void ThreadPool::RunStripe(int stripe, std::size_t num_chunks,
                           const std::function<void(std::size_t)>& fn,
                           void* context) {
  ParallelRegionGuard guard;
  AmbientContextGuard context_guard(context);
  try {
    for (std::size_t c = static_cast<std::size_t>(stripe); c < num_chunks;
         c += static_cast<std::size_t>(num_threads_)) {
      fn(c);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) {
      first_error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t num_chunks = 0;
    void* context = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      fn = job_;
      num_chunks = num_chunks_;
      context = job_context_;
    }
    RunStripe(worker_id, num_chunks, *fn, context);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++workers_done_ == static_cast<int>(workers_.size())) {
        cv_done_.notify_one();
      }
    }
  }
}

void ThreadPool::Run(std::size_t num_chunks,
                     const std::function<void(std::size_t)>& fn) {
  if (num_chunks == 0) {
    return;
  }
  // Single-threaded pools and nested calls execute inline; reentrancy from
  // inside a chunk must not wait on the pool it is already occupying.
  if (workers_.empty() || InParallelRegion()) {
    ParallelRegionGuard guard;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      fn(c);
    }
    return;
  }
  // Capture the submitting thread's ambient context (request context)
  // before fanning out, so worker stripes attribute their spans to the
  // same request. The caller's own stripe keeps its TLS naturally.
  void* context = nullptr;
  if (void* (*capture)() = g_ctx_capture.load(std::memory_order_relaxed)) {
    context = capture();
  }
  std::lock_guard<std::mutex> run_lk(run_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    num_chunks_ = num_chunks;
    job_context_ = context;
    workers_done_ = 0;
    ++epoch_;
  }
  cv_start_.notify_all();
  // The caller works the last stripe while the workers take the others.
  RunStripe(num_threads_ - 1, num_chunks, fn, context);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(
        lk, [&] { return workers_done_ == static_cast<int>(workers_.size()); });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lk(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool == nullptr) {
    pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *pool;
}

void SetGlobalThreadCount(int num_threads) {
  MGARDP_CHECK_GE(num_threads, 1);
  std::lock_guard<std::mutex> lk(GlobalPoolMutex());
  GlobalPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

int GlobalThreadCount() { return GlobalThreadPool().num_threads(); }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  ThreadPool& pool = GlobalThreadPool();
  const std::size_t max_chunks =
      std::min<std::size_t>(static_cast<std::size_t>(pool.num_threads()),
                            (n + g - 1) / g);
  if (max_chunks <= 1) {
    body(begin, end);
    return;
  }
  // Balanced partition: the first `rem` chunks get one extra iteration.
  const std::size_t base = n / max_chunks;
  const std::size_t rem = n % max_chunks;
  pool.Run(max_chunks, [&](std::size_t c) {
    const std::size_t lo =
        begin + c * base + std::min(c, rem);
    const std::size_t hi = lo + base + (c < rem ? 1 : 0);
    body(lo, hi);
  });
}

}  // namespace mgardp
