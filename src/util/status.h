// Status / Result error-handling primitives, modeled after Apache Arrow.
//
// Library code in mgardp does not throw exceptions across public API
// boundaries: fallible operations return Status (no payload) or Result<T>
// (payload or error). Use the MGARDP_RETURN_NOT_OK / MGARDP_ASSIGN_OR_RETURN
// macros to propagate failures.

#ifndef MGARDP_UTIL_STATUS_H_
#define MGARDP_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace mgardp {

// Machine-readable category for a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kOverloaded,
};

// Returns a short human-readable name for `code` (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

// A success-or-error value without payload.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // Unrecoverable corruption of stored data (checksum mismatch, torn
  // write): unlike kIOError it is permanent, so retrying is pointless.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  // The service shed this request at admission (queue full, tenant over
  // quota). The work was never started; the client may back off and
  // resubmit. Distinct from kFailedPrecondition so load shedding is
  // machine-distinguishable from caller bugs.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Invalid argument: why" or "OK".
  std::string ToString() const;

  // Aborts the process with a diagnostic if this status is not OK.
  // Intended for callers that have already established success is invariant.
  void Abort(const char* context = nullptr) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// A value of type T or a Status describing why it is absent.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error keeps call sites terse:
  //   Result<int> F() { if (bad) return Status::Invalid("..."); return 42; }
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      // An OK status carries no value; treat as a programming error.
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  // Access the contained value. Must only be called when ok().
  T& value() & { return std::get<T>(repr_); }
  const T& value() const& { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  // Returns the value or aborts with the error message. For tests and
  // examples where failure is unrecoverable anyway.
  T ValueOrDie() && {
    if (!ok()) {
      status().Abort("Result::ValueOrDie");
    }
    return std::get<T>(std::move(repr_));
  }

 private:
  std::variant<Status, T> repr_;
};

namespace internal {
// Token pasting helpers for unique temporary names inside macros.
#define MGARDP_CONCAT_IMPL(x, y) x##y
#define MGARDP_CONCAT(x, y) MGARDP_CONCAT_IMPL(x, y)
}  // namespace internal

// Uniform way to pull a Status out of a Status or a Result<T>.
inline const Status& GetStatus(const Status& s) { return s; }
template <typename T>
const Status& GetStatus(const Result<T>& r) {
  return r.status();
}

// Evaluates `expr` (a Status or Result) and returns its error from the
// current function if it failed.
#define MGARDP_RETURN_NOT_OK(expr)                        \
  do {                                                    \
    auto&& MGARDP_CONCAT(_st_, __LINE__) = (expr);        \
    if (!MGARDP_CONCAT(_st_, __LINE__).ok()) {            \
      return GetStatus(MGARDP_CONCAT(_st_, __LINE__));    \
    }                                                     \
  } while (false)

// Evaluates a Result expression; on success moves the value into `lhs`,
// on failure returns the error. `lhs` may be a declaration.
#define MGARDP_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  MGARDP_ASSIGN_OR_RETURN_IMPL(                             \
      MGARDP_CONCAT(_result_, __LINE__), lhs, rexpr)

#define MGARDP_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                 \
  if (!result_name.ok()) {                                    \
    return result_name.status();                              \
  }                                                           \
  lhs = std::move(result_name).value()

}  // namespace mgardp

#endif  // MGARDP_UTIL_STATUS_H_
