// Summary statistics over scalar fields.
//
// Used both for experiment reporting (max error, PSNR) and as the statistical
// data-feature vector F fed to the DNN models (Sec. III-C of the paper).

#ifndef MGARDP_UTIL_STATS_H_
#define MGARDP_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mgardp {

// One-pass summary of a scalar field.
struct FieldSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;  // excess kurtosis (normal = 0)
  double abs_mean = 0.0;
  double abs_max = 0.0;
  double l2_norm = 0.0;

  double range() const { return max - min; }
  std::string ToString() const;
};

// Computes moments/extrema of `values` in a single pass.
FieldSummary Summarize(const std::vector<double>& values);
FieldSummary Summarize(const double* values, std::size_t n);

// Maximum absolute pointwise difference between two equally sized fields.
double MaxAbsError(const std::vector<double>& a, const std::vector<double>& b);

// Root-mean-square pointwise difference.
double RmsError(const std::vector<double>& a, const std::vector<double>& b);

// Peak signal-to-noise ratio in dB: 20*log10(range(a) / rmse). Returns +inf
// when the error is zero and -inf when the range is zero with nonzero error.
double Psnr(const std::vector<double>& original,
            const std::vector<double>& reconstructed);

// q-th quantile (0 <= q <= 1) with linear interpolation; copies and sorts.
double Quantile(std::vector<double> values, double q);

// Evenly spaced quantiles of |values|, used as a fixed-size sketch of a
// coefficient distribution (E-MGARD encoder input). Returns `bins` values:
// the (i+0.5)/bins quantiles of the absolute values, ascending.
std::vector<double> AbsQuantileSketch(const std::vector<double>& values,
                                      std::size_t bins);

// Pearson correlation between two equally sized samples. Returns 0 when
// either sample has zero variance.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace mgardp

#endif  // MGARDP_UTIL_STATS_H_
