// Deterministic random number generation.
//
// All stochastic components (simulators, DNN weight init, shufflers) take an
// explicit seed so every experiment in the repository is reproducible.

#ifndef MGARDP_UTIL_RNG_H_
#define MGARDP_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace mgardp {

// xoshiro256** by Blackman & Vigna: small, fast, high-quality, and -- unlike
// std::mt19937 -- guaranteed to produce the same stream on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t NextUint64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextBounded(std::uint64_t n) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~n + 1) % n;
    for (;;) {
      const std::uint64_t r = NextUint64();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  // Standard normal via Box-Muller (polar form avoided for determinism of
  // call counts; pairs are cached).
  double NextGaussian();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace mgardp

#endif  // MGARDP_UTIL_RNG_H_
